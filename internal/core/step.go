package core

import (
	"partree/internal/octree"
	"partree/internal/partition"
	"partree/internal/phys"
	"partree/internal/trace"
)

// StepInput is one timestep of a long-lived session driven through a
// Stepper. The caller mutates the Stepper's bodies in place (drift, or
// overwriting positions from a client) before each Step call; StepInput
// carries only the per-step control knobs.
type StepInput struct {
	// Rebuild forces a fresh rebuild this step regardless of what the
	// fallback policy decided.
	Rebuild bool
}

// StepResult is the outcome of one Stepper step.
type StepResult struct {
	Step    int
	Tree    *octree.Tree
	Metrics *Metrics
	// ChurnFrac is the fraction of bodies that crossed their leaf
	// boundary this step (0 on fresh rebuilds, which move everything by
	// definition).
	ChurnFrac float64
	// DepthSkew is Metrics.Depth.Skew() — max/mean live-leaf depth.
	DepthSkew float64
	// Fresh reports the builder rebuilt from scratch; Reason names why.
	Fresh  bool
	Reason string
	// Fallback reports this step's rebuild was requested by the
	// auto-fallback policy rather than by the caller.
	Fallback bool
	// Retuned reports this step ran with knobs the adapter changed after
	// the previous step (the step that pays the retune's fresh rebuild).
	Retuned bool
}

// Adapter is the measured-cost feedback hook a Stepper consults between
// steps: it sees each finished step's owner assignment and trace summary,
// may propose a knob change, and cuts the next step's body partition.
// Implemented by internal/adapt; declared here so core never depends on
// the adaptive layer.
type Adapter interface {
	// Observe attributes the just-finished step's measured per-processor
	// time (sum may be nil on untraced builds) back to the zones of
	// assign — the assignment the step was built with.
	Observe(assign [][]int32, sum *trace.Summary)
	// Retune may propose a changed Config (leaf capacity, SPACE
	// threshold, effective P) for the following steps. Returning false
	// keeps cur. A true return costs one fresh rebuild on the next step:
	// the Stepper recreates its resident builder around the new knobs.
	Retune(cur Config) (Config, bool)
	// Partition cuts the next step's body assignment over the finished
	// tree — typically costzones along measurement-corrected costs. It
	// must cover every body exactly once.
	Partition(t *octree.Tree, d octree.BodyData, p int) [][]int32
}

// Stepper drives a resident UPDATE builder step over step, the way a
// session does: it owns the step counter, repartitions the bodies after
// every step so the assignment tracks the moving distribution, feeds each
// step's churn and depth-skew stats to a FallbackController, and converts
// the controller's verdict into an Input.Rebuild on the following step.
// This is the step-over-step surface internal/engine leases pin;
// internal/nbody keeps its own loop because it also owns integration and
// costzones repartitioning.
type Stepper struct {
	cfg    Config
	b      Builder
	ctrl   *FallbackController
	bodies *phys.Bodies
	assign [][]int32
	step   int
	// pendingRebuild is the controller's verdict from the previous step,
	// consumed (and reset) by the next Step call.
	pendingRebuild bool
	// adapter, when non-nil, closes the measured-cost feedback loop: it
	// replaces the static costzones repartition and may retune knobs.
	adapter Adapter
	// retuned marks that the adapter changed knobs after the last step;
	// consumed by the next Step call into StepResult.Retuned.
	retuned bool
}

// NewStepper pins a fresh UPDATE builder over bodies. DepthStats is
// forced on so the fallback policy always has its shape signal. Step 0
// builds over a spatially compact Morton split; every later step's
// assignment is recut with costzones over the freshly built tree, so the
// partition follows the bodies instead of freezing at step 0.
func NewStepper(cfg Config, bodies *phys.Bodies, policy FallbackPolicy) *Stepper {
	cfg.DepthStats = true
	return &Stepper{
		cfg:    cfg,
		b:      New(UPDATE, cfg),
		ctrl:   NewFallbackController(policy),
		bodies: bodies,
		assign: SpatialAssign(bodies, cfg.P),
	}
}

// NewAdaptiveStepper is NewStepper with a measured-cost adapter in the
// loop. The stepper needs per-processor phase times for the adapter to
// attribute, so when cfg.Trace is unset an enabled recorder is created;
// an explicitly provided recorder is used as-is.
func NewAdaptiveStepper(cfg Config, bodies *phys.Bodies, policy FallbackPolicy, a Adapter) *Stepper {
	if cfg.Trace == nil && a != nil {
		cfg.Trace = trace.New(resolveP(cfg.P))
		cfg.Trace.SetEnabled(true)
	}
	st := NewStepper(cfg, bodies, policy)
	st.adapter = a
	return st
}

// resolveP mirrors Config.withDefaults's processor-count defaulting for
// callers that size companion state (trace recorders) before New runs.
func resolveP(p int) int {
	if p <= 0 {
		return 1
	}
	return p
}

// Bodies returns the resident body state for in-place mutation between
// steps. The slice headers must not be replaced; N is fixed for the
// stepper's lifetime.
func (st *Stepper) Bodies() *phys.Bodies { return st.bodies }

// Builder exposes the pinned resident builder for storage accounting
// (engine.Stats aggregates its store via StoresOf).
func (st *Stepper) Builder() Builder { return st.b }

// Steps returns how many steps have been taken.
func (st *Stepper) Steps() int { return st.step }

// Config returns the stepper's current configuration — the live knob
// values after any adapter retunes.
func (st *Stepper) Config() Config { return st.cfg }

// Assign returns the body assignment the next Step will build with. The
// returned slices are the stepper's own: read-only for callers.
func (st *Stepper) Assign() [][]int32 { return st.assign }

// Step builds (or repairs) the tree for the current body state and
// advances the step counter.
func (st *Stepper) Step(in StepInput) *StepResult {
	fallback := st.pendingRebuild && !in.Rebuild
	st.pendingRebuild = false
	retuned := st.retuned
	st.retuned = false

	bi := &Input{
		Bodies:  st.bodies,
		Assign:  st.assign,
		Step:    st.step,
		Rebuild: in.Rebuild || fallback,
	}
	tree, m := st.b.Build(bi)

	res := &StepResult{
		Step:     st.step,
		Tree:     tree,
		Metrics:  m,
		Fresh:    m.FreshRebuild,
		Reason:   m.FreshReason,
		Fallback: fallback && m.FreshRebuild,
		Retuned:  retuned,
	}
	if n := st.bodies.N(); n > 0 && !m.FreshRebuild {
		res.ChurnFrac = float64(m.TotalBodiesMoved()) / float64(n)
	}
	if m.Depth != nil {
		res.DepthSkew = m.Depth.Skew()
	}
	st.pendingRebuild = st.ctrl.Observe(res.ChurnFrac, res.DepthSkew, m.FreshRebuild)
	st.repartition(tree, m)
	st.step++
	return res
}

// repartition recuts the body assignment for the next step over the tree
// just built — the staleness fix: before it, the step-0 partition (and
// its costs) served every subsequent step unchanged. Without an adapter
// the cut is plain costzones over the modeled costs; with one, the
// adapter observes this step's measured times, may retune knobs (applied
// before the cut so the new P shapes it), and cuts along its corrected
// costs.
func (st *Stepper) repartition(tree *octree.Tree, m *Metrics) {
	if st.bodies.N() == 0 {
		return
	}
	d := octree.BodyData{Pos: st.bodies.Pos, Mass: st.bodies.Mass, Cost: st.bodies.Cost}
	if st.adapter == nil {
		st.assign = partition.Costzones(tree, d, st.cfg.P)
		return
	}
	st.adapter.Observe(st.assign, m.Trace)
	if cfg, changed := st.adapter.Retune(st.cfg); changed {
		st.applyKnobs(cfg)
	}
	st.assign = st.adapter.Partition(tree, d, st.cfg.P)
}

// applyKnobs rebuilds the stepper around an adapter-retuned Config. The
// resident builder's store is sized by (P, LeafCap) at construction, so a
// knob change means a new builder — the next step is a FreshFirst rebuild,
// which sessions do not count as unplanned. The trace recorder is per-P
// too (verify's law 6 demands trace and metrics agree on processor
// count), so a P change recreates it.
func (st *Stepper) applyKnobs(cfg Config) {
	cfg.DepthStats = true
	if cfg.P != st.cfg.P && st.cfg.Trace != nil {
		tr := trace.New(resolveP(cfg.P))
		tr.SetEnabled(true)
		cfg.Trace = tr
	}
	st.cfg = cfg
	st.b = New(UPDATE, cfg)
	st.retuned = true
}
