package vec

import "math"

// Box is a general axis-aligned box (unlike Cube it need not be square).
// The message-passing baseline's orthogonal recursive bisection produces
// boxes, and the locally-essential-tree criterion needs point-to-box and
// box-to-box distances.
type Box struct {
	Lo, Hi V3
}

// BoxOf returns the bounding box of the positions.
func BoxOf(n int, pos func(i int) V3) Box {
	if n == 0 {
		return Box{}
	}
	b := Box{Lo: pos(0), Hi: pos(0)}
	for i := 1; i < n; i++ {
		p := pos(i)
		b.Lo = b.Lo.Min(p)
		b.Hi = b.Hi.Max(p)
	}
	return b
}

// Contains reports whether p is inside the closed box.
func (b Box) Contains(p V3) bool {
	return p.X >= b.Lo.X && p.X <= b.Hi.X &&
		p.Y >= b.Lo.Y && p.Y <= b.Hi.Y &&
		p.Z >= b.Lo.Z && p.Z <= b.Hi.Z
}

// Dist returns the minimum distance from p to the box (0 if inside).
func (b Box) Dist(p V3) float64 {
	dx := axisDist(p.X, b.Lo.X, b.Hi.X)
	dy := axisDist(p.Y, b.Lo.Y, b.Hi.Y)
	dz := axisDist(p.Z, b.Lo.Z, b.Hi.Z)
	return math.Sqrt(dx*dx + dy*dy + dz*dz)
}

func axisDist(x, lo, hi float64) float64 {
	if x < lo {
		return lo - x
	}
	if x > hi {
		return x - hi
	}
	return 0
}

// LongestAxis returns 0, 1, or 2 for the box's longest extent.
func (b Box) LongestAxis() int {
	d := b.Hi.Sub(b.Lo)
	if d.X >= d.Y && d.X >= d.Z {
		return 0
	}
	if d.Y >= d.Z {
		return 1
	}
	return 2
}

// Split cuts the box at coordinate c along the axis, returning the low
// and high halves.
func (b Box) Split(axis int, c float64) (Box, Box) {
	lo, hi := b, b
	switch axis {
	case 0:
		lo.Hi.X, hi.Lo.X = c, c
	case 1:
		lo.Hi.Y, hi.Lo.Y = c, c
	default:
		lo.Hi.Z, hi.Lo.Z = c, c
	}
	return lo, hi
}
