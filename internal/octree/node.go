package octree

import (
	"sync/atomic"

	"partree/internal/vec"
)

// Cell is an internal octree node with up to eight children. Children are
// published with atomic stores and read with atomic loads; everything else
// is written either before publication or during the single-threaded
// moments pass for that node.
type Cell struct {
	child [vec.NOctants]uint32 // Ref values, accessed atomically

	// Cube is the space this cell represents. Stored (not derived) because
	// the UPDATE algorithm compares bodies against the bounds a node had
	// in the previous time step.
	Cube vec.Cube

	// Parent is the cell containing this one (Nil for the root). UPDATE
	// walks these links upward when a body leaves its old leaf.
	Parent Ref

	// Owner is the processor that created the cell; the parallel moments
	// pass assigns each cell to its creator, as in the paper.
	Owner int32

	// Moments, filled by the moments pass.
	Mass  float64
	COM   vec.V3
	NBody int32
	Cost  int64 // subtree force-calculation cost, consumed by costzones

	// Quad is the traceless quadrupole tensor about COM, packed as
	// (xx, yy, zz, xy, xz, yz). The force phase can use it for a
	// second-order cell approximation, as the original BARNES code does.
	Quad Quadrupole

	// pending counts children whose moments are not yet computed; the
	// parallel moments pass decrements it atomically.
	pending int32
}

// Quadrupole is a symmetric traceless 3×3 tensor packed as
// (xx, yy, zz, xy, xz, yz).
type Quadrupole [6]float64

// AddPoint accumulates a point mass m at offset d from the expansion
// center: Q += m (3 d dᵀ - |d|² I).
func (q *Quadrupole) AddPoint(m float64, d vec.V3) {
	r2 := d.Len2()
	q[0] += m * (3*d.X*d.X - r2)
	q[1] += m * (3*d.Y*d.Y - r2)
	q[2] += m * (3*d.Z*d.Z - r2)
	q[3] += m * 3 * d.X * d.Y
	q[4] += m * 3 * d.X * d.Z
	q[5] += m * 3 * d.Y * d.Z
}

// AddShifted accumulates a child expansion (mass mc, tensor qc) whose
// center sits at offset d from this expansion's center (parallel-axis
// transport plus the child's own tensor).
func (q *Quadrupole) AddShifted(mc float64, qc Quadrupole, d vec.V3) {
	for i := range q {
		q[i] += qc[i]
	}
	q.AddPoint(mc, d)
}

// Apply returns Q·r and rᵀQr.
func (q Quadrupole) Apply(r vec.V3) (vec.V3, float64) {
	qr := vec.V3{
		X: q[0]*r.X + q[3]*r.Y + q[4]*r.Z,
		Y: q[3]*r.X + q[1]*r.Y + q[5]*r.Z,
		Z: q[4]*r.X + q[5]*r.Y + q[2]*r.Z,
	}
	return qr, qr.Dot(r)
}

// Child atomically loads the child reference in octant o.
func (c *Cell) Child(o vec.Octant) Ref {
	return Ref(atomic.LoadUint32(&c.child[o]))
}

// SetChild atomically publishes child r in octant o. All initialization of
// the node r refers to must precede this call.
func (c *Cell) SetChild(o vec.Octant, r Ref) {
	atomic.StoreUint32(&c.child[o], uint32(r))
}

// SlotOf scans the child slots for r and returns its octant. Identifying
// a child's slot geometrically — OctantOf(child.Cube.Center) — breaks
// down at extreme depth: once the cube size drops below an ulp of the
// center coordinates, Child's center±size/4 rounds back onto the parent
// center and OctantOf picks the all-high octant regardless of where the
// child actually hangs. Coincident bodies drive cubes that small, so any
// "which slot holds this node" question must go through the links.
func (c *Cell) SlotOf(r Ref) (vec.Octant, bool) {
	for o := vec.Octant(0); o < vec.NOctants; o++ {
		if c.Child(o) == r {
			return o, true
		}
	}
	return 0, false
}

// CASChild atomically replaces the child in octant o if it still equals
// old. The concurrent builders use it to publish a freshly created node
// without holding the cell lock across allocation.
func (c *Cell) CASChild(o vec.Octant, old, new Ref) bool {
	return atomic.CompareAndSwapUint32(&c.child[o], uint32(old), uint32(new))
}

// childSlice copies the eight child refs with atomic loads.
func (c *Cell) childSlice() [vec.NOctants]Ref {
	var out [vec.NOctants]Ref
	for o := range c.child {
		out[o] = Ref(atomic.LoadUint32(&c.child[o]))
	}
	return out
}

// initChildren sets every child slot to Nil. Called once at allocation,
// before the cell is published.
func (c *Cell) initChildren() {
	for o := range c.child {
		c.child[o] = uint32(Nil)
	}
}

// Leaf is a terminal octree node holding body indices. All mutation of a
// live leaf happens under the Store's striped lock for its Ref.
type Leaf struct {
	Cube   vec.Cube
	Parent Ref
	Owner  int32

	// Bodies holds indices into the phys.Bodies store. Its length exceeds
	// the tree's LeafCap only for overflow leaves at MaxDepth (coincident
	// or near-coincident bodies that no amount of subdivision separates).
	Bodies []int32

	// Retired marks a leaf that was subdivided (or emptied by UPDATE) and
	// unlinked from the tree. A walker that locked a retired leaf must
	// restart its descent.
	Retired bool

	// Moments, filled by the moments pass. Quad is only consumed when a
	// leaf's moments roll up into an ancestor cell's expansion.
	Mass float64
	COM  vec.V3
	Cost int64
	Quad Quadrupole
}

// NBody returns the number of bodies in the leaf.
func (l *Leaf) NBody() int { return len(l.Bodies) }
