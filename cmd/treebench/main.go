// Command treebench benchmarks the five native tree builders on this
// machine: wall-clock per build, lock counts, and tree statistics across
// algorithms and processor counts. Each (algorithm, procs) cell is a
// build-only spec executed through the shared internal/runner engine
// (serially, so wall-clock timings stay honest).
//
// Usage:
//
//	treebench [-n 65536] [-p 1,2,4,8] [-reps 5] [-leafcap 8] [-model plummer]
//	          [-timeout 0] [-check] [-json]
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"partree/internal/core"
	"partree/internal/runner"
	"partree/internal/stats"
)

func main() {
	sf := runner.RegisterSpecFlags(flag.CommandLine, runner.Spec{
		Backend:   runner.Native,
		Bodies:    65536,
		Seed:      1,
		BuildOnly: true,
	}, "alg", "p", "steps", "theta", "dt")
	var (
		procs   = flag.String("p", "1,2,4,8", "comma-separated processor counts")
		reps    = flag.Int("reps", 5, "builds per configuration (best time reported)")
		spatial = flag.Bool("spatial", true, "spatially coherent body partition (like settled costzones)")
	)
	flag.Parse()

	base, err := sf.Spec()
	if err != nil {
		fmt.Fprintf(os.Stderr, "treebench: %v\n", err)
		os.Exit(2)
	}
	base.BuildOnly = true
	base.Steps = *reps
	base.Spatial = *spatial

	var ps []int
	for _, f := range strings.Split(*procs, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil || v < 1 {
			fmt.Fprintf(os.Stderr, "treebench: bad processor count %q\n", f)
			os.Exit(2)
		}
		ps = append(ps, v)
	}

	var specs []runner.Spec
	for _, alg := range core.Algorithms() {
		for _, p := range ps {
			spec := base
			spec.Alg = alg
			spec.Procs = p
			specs = append(specs, spec)
		}
	}

	// One worker: concurrent wall-clock benchmarks would contend for the
	// same cores and corrupt each other's timings.
	results := runner.New(1).RunAll(context.Background(), specs)

	if sf.JSON() {
		if err := runner.WriteJSON(os.Stdout, results...); err != nil {
			fmt.Fprintf(os.Stderr, "treebench: %v\n", err)
			os.Exit(1)
		}
		for _, r := range results {
			if r.Failed() {
				os.Exit(1)
			}
		}
		return
	}

	fmt.Printf("treebench: %d bodies (%s), k=%d, best of %d builds\n\n",
		base.Bodies, base.Model, base.LeafCap, base.Steps)

	header := []string{"algorithm"}
	for _, p := range ps {
		header = append(header, fmt.Sprintf("%dp", p))
	}
	header = append(header, "locks(8p)", "tree")
	t := stats.NewTable(header...)

	i := 0
	for _, alg := range core.Algorithms() {
		row := []any{alg.String()}
		var locks int64
		var treeDesc string
		for pi, p := range ps {
			res := results[i]
			i++
			if res.Failed() {
				fmt.Fprintf(os.Stderr, "treebench: %s\n", res.FailureMessage())
				row = append(row, "-")
				continue
			}
			if p == 8 || (pi == len(ps)-1 && locks == 0) {
				locks = res.LocksTotal
				treeDesc = fmt.Sprintf("%dc/%dl d%d", res.Cells, res.Leaves, res.MaxDepth)
			}
			row = append(row, time.Duration(res.TreeNs).Round(10*time.Microsecond).String())
		}
		row = append(row, locks, treeDesc)
		t.Row(row...)
	}
	t.Write(os.Stdout)
}
