package trace_test

import (
	"fmt"
	"sort"
	"testing"
	"time"

	"partree/internal/core"
	"partree/internal/phys"
	"partree/internal/trace"
)

// overheadN/overheadP shape the workload after the repo-root
// BenchmarkNativeTreeBuild, scaled to n=10k so a full sample set stays
// under a second.
const (
	overheadN = 10000
	overheadP = 4
)

func overheadInput(p int) (*core.Input, core.Config) {
	bodies := phys.Generate(phys.ModelPlummer, overheadN, 1998)
	in := &core.Input{Bodies: bodies, Assign: core.SpatialAssign(bodies, p)}
	return in, core.Config{P: p, LeafCap: 8}
}

// buildNs times one build.
func buildNs(bld core.Builder, in *core.Input, step int) float64 {
	in.Step = step
	start := time.Now()
	bld.Build(in)
	return float64(time.Since(start).Nanoseconds())
}

// TestDisabledTracingOverhead is the regression gate for the tracing
// layer's core promise: a builder carrying a disabled recorder must cost
// within 2% of one built with no recorder at all (the never-compiled-in
// baseline), because the disabled path reduces to one pointer/flag check
// per hook. Samples interleave the two configurations so frequency
// scaling and background noise hit both sides equally; the comparison
// uses medians and retries to ride out a noisy machine.
func TestDisabledTracingOverhead(t *testing.T) {
	if testing.Short() {
		t.Skip("timing comparison: skipped with -short")
	}
	in, cfg := overheadInput(overheadP)

	// ORIG takes the lock-instrumented path on every body, so it sees
	// the most emit hooks per build of the five algorithms.
	bare := core.New(core.ORIG, cfg)

	tcfg := cfg
	rec := trace.New(overheadP)
	tcfg.Trace = rec // never enabled: the disabled no-op path under test
	traced := core.New(core.ORIG, tcfg)

	const (
		rounds    = 21 // interleaved median samples per side
		limit     = 1.02
		attempts  = 3
		warmupPer = 3
	)
	for i := 0; i < warmupPer; i++ {
		in.Step = i
		bare.Build(in)
		traced.Build(in)
	}
	var last string
	for attempt := 1; attempt <= attempts; attempt++ {
		bareTs := make([]float64, 0, rounds)
		tracedTs := make([]float64, 0, rounds)
		for i := 0; i < rounds; i++ {
			bareTs = append(bareTs, buildNs(bare, in, i))
			tracedTs = append(tracedTs, buildNs(traced, in, i))
		}
		sort.Float64s(bareTs)
		sort.Float64s(tracedTs)
		ratio := tracedTs[rounds/2] / bareTs[rounds/2]
		if rec.Summarize().TotalLockEvents() != 0 {
			t.Fatal("disabled recorder captured events during the overhead run")
		}
		if ratio <= limit {
			return
		}
		last = fmt.Sprintf("attempt %d: disabled-tracing median %.3fx the untraced median (limit %.2fx)",
			attempt, ratio, limit)
		t.Log(last)
	}
	t.Errorf("disabled tracing exceeds the overhead budget on %d consecutive attempts: %s", attempts, last)
}

// Companion benchmarks for manual inspection of all three states:
//
//	go test ./internal/trace -run=NONE -bench=Build -benchtime=20x
func benchBuild(b *testing.B, cfg core.Config) {
	in, _ := overheadInput(cfg.P)
	bld := core.New(core.ORIG, cfg)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		in.Step = i
		bld.Build(in)
	}
}

func BenchmarkBuildNoRecorder(b *testing.B) {
	benchBuild(b, core.Config{P: overheadP, LeafCap: 8})
}

func BenchmarkBuildTracingDisabled(b *testing.B) {
	benchBuild(b, core.Config{P: overheadP, LeafCap: 8, Trace: trace.New(overheadP)})
}

func BenchmarkBuildTracingEnabled(b *testing.B) {
	rec := trace.New(overheadP)
	rec.SetEnabled(true)
	benchBuild(b, core.Config{P: overheadP, LeafCap: 8, Trace: rec})
}
