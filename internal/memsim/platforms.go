package memsim

// The five platform presets, calibrated to the paper's §3 hardware
// descriptions. Two latencies were corrupted in the scraped text (DESIGN.md
// §4): the Origin's remote miss ("73ns") uses the published 703 ns, the
// Typhoon-0 round trip ("4 microseconds") uses 40 µs, and the Paragon
// message latency ("5s") uses 50 µs. Ablation benches vary these to show
// the qualitative results are insensitive.

// Challenge models the SGI Challenge: 16×150 MHz R4400 on a 1.2 GB/s
// POWERpath-2 bus, centralized memory, ~1100 ns secondary-cache miss.
func Challenge() Platform {
	return Platform{
		Name:     "Challenge",
		Kind:     SnoopyBus,
		CycleNs:  1000.0 / 150,
		HitNs:    2 * 1000.0 / 150,
		LineSize: 128,
		PageSize: 4096,
		Nodes:    1,

		LocalMissNs: 1100,
		DirtyMissNs: 1400,
		InvalNs:     50,
		OccupancyNs: 105, // 128 B line at 1.22 GB/s

		LockNs:      1100,
		LockHandoff: 200,
		BarrierBase: 2000,
		BarrierPerP: 200,
	}
}

// Origin2000 models the SGI Origin 2000: 200 MHz R10000s, two per node,
// hardware directory coherence, ≤313 ns local and ≤703 ns remote misses.
func Origin2000(p int) Platform {
	nodes := (p + 1) / 2
	return Platform{
		Name:     "Origin2000",
		Kind:     Directory,
		CycleNs:  5,
		HitNs:    10,
		LineSize: 128,
		PageSize: 16384,
		Nodes:    nodes,

		LocalMissNs:  313,
		RemoteMissNs: 703,
		DirtyMissNs:  1036,
		InvalNs:      40,
		OccupancyNs:  60,

		LockNs:      703,
		LockHandoff: 150,
		BarrierBase: 1500,
		BarrierPerP: 150,
	}
}

// Paragon models the Intel Paragon running HLRC shared virtual memory in
// software at 4 KB pages: 50 MHz i860 compute processors, a dedicated
// communication coprocessor, ~50 µs one-way message latency.
func Paragon() Platform {
	return Platform{
		Name:     "Paragon",
		Kind:     HLRC,
		CycleNs:  20,
		HitNs:    40,
		LineSize: 32,
		PageSize: 4096,

		MsgNs:      50000,
		PageXferNs: 100000, // 4 KB through the OS-level messaging path
		SoftNs:     100000, // handler: trap, VM manipulation, protocol code
		TwinNs:     20000,
		DiffNs:     50000,
		NoticeNs:   3000,

		BarrierBase: 500000,
		BarrierPerP: 50000,
	}
}

// TyphoonHLRC models Typhoon-0 running the same HLRC protocol at 4 KB
// pages: 66 MHz HyperSPARCs over Myrinet, ~40 µs round trip, bandwidth
// limited by the SBus.
func TyphoonHLRC() Platform {
	return Platform{
		Name:     "Typhoon-0/HLRC",
		Kind:     HLRC,
		CycleNs:  15,
		HitNs:    30,
		LineSize: 64,
		PageSize: 4096,

		MsgNs:      20000,
		PageXferNs: 80000, // 4 KB over the SBus-limited path
		SoftNs:     50000, // handler on the protocol processor
		TwinNs:     10000,
		DiffNs:     30000,
		NoticeNs:   2000,

		BarrierBase: 200000,
		BarrierPerP: 20000,
	}
}

// TyphoonSC models Typhoon-0's fine-grain sequentially consistent mode:
// 64-byte access control in hardware, protocol handlers in software on the
// second processor of each node.
func TyphoonSC() Platform {
	return Platform{
		Name:     "Typhoon-0/SC",
		Kind:     FineGrainSC,
		CycleNs:  15,
		HitNs:    30,
		LineSize: 64,
		PageSize: 4096,

		LocalMissNs:  1500,  // local software handler
		RemoteMissNs: 24000, // remote fetch over Myrinet, software both ends
		DirtyMissNs:  36000,
		InvalNs:      2000,
		OccupancyNs:  4000,  // protocol-processor occupancy per request
		SoftNs:       10000, // handler execution added to every miss

		LockNs:      16000,
		LockHandoff: 4000,
		BarrierBase: 40000,
		BarrierPerP: 5000,
	}
}

// AllPlatforms returns the paper's five platform configurations for p
// processors, in the order the paper presents them.
func AllPlatforms(p int) []Platform {
	return []Platform{Challenge(), Origin2000(p), Paragon(), TyphoonHLRC(), TyphoonSC()}
}
