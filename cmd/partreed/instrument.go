// Request instrumentation for the daemon: the middleware that gives
// every API request an ID (honoring an inbound W3C traceparent),
// threads a reqtrace span context through the handler, emits the
// structured access log, and answers with X-Request-Id — plus the
// Server-Timing rendering /v1/build uses.
package main

import (
	"fmt"
	"log/slog"
	"net/http"
	"time"

	"partree/internal/reqtrace"
)

// requestID resolves the request ID: the traceparent trace-id when the
// client sent a valid one (so partreed joins the caller's distributed
// trace), a freshly minted one otherwise.
func requestID(h http.Header) string {
	if id, ok := reqtrace.ParseTraceparent(h.Get("traceparent")); ok {
		return id
	}
	return reqtrace.MintID()
}

// countingWriter observes the status and body bytes a handler writes.
// Unwrap keeps http.NewResponseController working through it — the
// session handler needs EnableFullDuplex and Flush on the underlying
// writer.
type countingWriter struct {
	http.ResponseWriter
	status int
	bytes  int64
}

func (c *countingWriter) WriteHeader(code int) {
	if c.status == 0 {
		c.status = code
	}
	c.ResponseWriter.WriteHeader(code)
}

func (c *countingWriter) Write(p []byte) (int, error) {
	if c.status == 0 {
		c.status = http.StatusOK
	}
	n, err := c.ResponseWriter.Write(p)
	c.bytes += int64(n)
	return n, err
}

func (c *countingWriter) Unwrap() http.ResponseWriter { return c.ResponseWriter }

func (c *countingWriter) Status() int {
	if c.status == 0 {
		return http.StatusOK
	}
	return c.status
}

// instrument wraps an API handler with the request envelope: ID,
// X-Request-Id header (set before the handler so error bodies and
// streams can reference it), span context, flight-recorder entry, and
// one access-log line per request. With the recorder disabled the
// request still gets an ID and a log line; the span context is simply
// never created (nil-handle no-op downstream).
func (d *daemon) instrument(route string, h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, req *http.Request) {
		id := requestID(req.Header)
		w.Header().Set("X-Request-Id", id)
		rq := d.rec.Start(id, route)
		if rq != nil {
			req = req.WithContext(reqtrace.NewContext(req.Context(), rq))
		}
		cw := &countingWriter{ResponseWriter: w}
		start := time.Now()
		h(cw, req)
		dur := time.Since(start)
		queue, _, _, _ := rq.Breakdown()
		rq.Finish(cw.Status(), cw.bytes)
		slog.Info("request",
			"id", id, "route", route, "status", cw.Status(), "bytes", cw.bytes,
			"dur_ms", durMs(dur), "queue_ms", durMs(queue))
	}
}

// durMs renders a duration as fractional milliseconds (3 decimals, the
// Server-Timing precision).
func durMs(d time.Duration) float64 {
	return float64(d.Microseconds()) / 1e3
}

// serverTiming renders a request's station breakdown as a Server-Timing
// header value: queue wait, tree build (bounds+insert), moments pass,
// and total elapsed, all in milliseconds.
func serverTiming(queue, build, moments, total time.Duration) string {
	return fmt.Sprintf("queue;dur=%.3f, build;dur=%.3f, moments;dur=%.3f, total;dur=%.3f",
		durMs(queue), durMs(build), durMs(moments), durMs(total))
}
