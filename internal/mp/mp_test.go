package mp

import (
	"math"
	"testing"

	"partree/internal/force"
	"partree/internal/octree"
	"partree/internal/phys"
	"partree/internal/vec"
)

func TestORBPartitions(t *testing.T) {
	for _, p := range []int{1, 2, 3, 7, 16} {
		b := phys.Generate(phys.ModelPlummer, 3000, 5)
		doms := ORB(b, p)
		if len(doms) != p {
			t.Fatalf("p=%d: %d domains", p, len(doms))
		}
		if err := Validate(b, doms); err != nil {
			t.Fatalf("p=%d: %v", p, err)
		}
		// Balance: within a couple of bodies of even.
		for _, d := range doms {
			want := float64(b.N()) / float64(p)
			if math.Abs(float64(len(d.Bodies))-want) > want/2+2 {
				t.Fatalf("p=%d: rank %d holds %d bodies, want ~%.0f", p, d.Rank, len(d.Bodies), want)
			}
		}
	}
}

func TestORBBoxesDisjointInterior(t *testing.T) {
	b := phys.Generate(phys.ModelUniform, 2000, 3)
	doms := ORB(b, 8)
	// Box centers of one domain must not fall strictly inside another's.
	for i, a := range doms {
		c := a.Box.Lo.Add(a.Box.Hi).Scale(0.5)
		for j, d := range doms {
			if i == j {
				continue
			}
			inside := c.X > d.Box.Lo.X && c.X < d.Box.Hi.X &&
				c.Y > d.Box.Lo.Y && c.Y < d.Box.Hi.Y &&
				c.Z > d.Box.Lo.Z && c.Z < d.Box.Hi.Z
			if inside {
				t.Fatalf("rank %d center inside rank %d box", i, j)
			}
		}
	}
}

func TestEssentialCoversAllMass(t *testing.T) {
	// The essential set of a tree for any box must carry the tree's
	// total mass (every body summarized exactly once).
	b := phys.Generate(phys.ModelPlummer, 2000, 7)
	tr := octree.BuildSerial(b.Pos, 8)
	d := octree.BodyData{Pos: b.Pos, Mass: b.Mass}
	octree.ComputeMomentsSerial(tr, d)
	box := vec.Box{Lo: vec.V3{X: 10, Y: 10, Z: 10}, Hi: vec.V3{X: 12, Y: 12, Z: 12}}
	mps, rbs := Essential(tr, d, box, 1.0)
	var mass float64
	for _, m := range mps {
		mass += m.Mass
	}
	for _, r := range rbs {
		mass += r.Mass
	}
	if math.Abs(mass-b.TotalMass()) > 1e-9 {
		t.Fatalf("essential mass %g, want %g", mass, b.TotalMass())
	}
	// A far box should be dominated by mass points, not raw bodies.
	if len(rbs) > len(mps) {
		t.Fatalf("far box shipped %d raw bodies vs %d points", len(rbs), len(mps))
	}
}

func TestEssentialNearBoxShipsBodies(t *testing.T) {
	b := phys.Generate(phys.ModelPlummer, 2000, 7)
	tr := octree.BuildSerial(b.Pos, 8)
	d := octree.BodyData{Pos: b.Pos, Mass: b.Mass}
	octree.ComputeMomentsSerial(tr, d)
	// A box overlapping the core cannot summarize nearby leaves.
	box := vec.Box{Lo: vec.V3{X: -0.2, Y: -0.2, Z: -0.2}, Hi: vec.V3{X: 0.2, Y: 0.2, Z: 0.2}}
	_, rbs := Essential(tr, d, box, 1.0)
	if len(rbs) == 0 {
		t.Fatal("no raw bodies shipped for an overlapping box")
	}
}

func TestMPForcesMatchDirect(t *testing.T) {
	// The MP evaluation re-groups received mass points into a remote
	// tree, adding a second approximation layer on top of BH's, so its
	// error may exceed single-tree BH's by a modest factor — but it must
	// stay the same order of magnitude and small in absolute terms.
	b := phys.Generate(phys.ModelPlummer, 1500, 9)
	params := force.Params{Theta: 0.8, Eps: 0.05, G: 1}

	// Single-tree BH reference.
	tr := octree.BuildSerial(b.Pos, 8)
	d := octree.BodyData{Pos: b.Pos, Mass: b.Mass}
	octree.ComputeMomentsSerial(tr, d)

	mpRun := b.Clone()
	Step(mpRun, Options{P: 4, LeafCap: 8, Force: params, Dt: 0})

	var errBH, errMP float64
	n := 0
	for i := 0; i < b.N(); i += 31 {
		exact := force.Direct(d, int32(i), params)
		bh := force.Accel(tr, d, int32(i), params).Acc
		mp := mpRun.Acc[i]
		scale := exact.Len() + 1e-12
		errBH += bh.Sub(exact).Len() / scale
		errMP += mp.Sub(exact).Len() / scale
		n++
	}
	errBH /= float64(n)
	errMP /= float64(n)
	if errMP > errBH*2.5 {
		t.Fatalf("MP mean error %.4g far worse than BH %.4g", errMP, errBH)
	}
	if errMP > 0.05 {
		t.Fatalf("MP mean error %.4g too large", errMP)
	}
}

func TestMPConservesMomentumish(t *testing.T) {
	b := phys.Generate(phys.ModelPlummer, 1000, 11)
	p0 := b.Momentum()
	for step := 0; step < 3; step++ {
		Step(b, Options{P: 4, Dt: 0.01})
	}
	if b.Momentum().Sub(p0).Len() > 1e-3 {
		t.Fatalf("momentum drifted: %v -> %v", p0, b.Momentum())
	}
}

func TestMPBytesScaleSublinearly(t *testing.T) {
	// The point of LETs: communication grows far slower than N².
	bytes := func(n int) int64 {
		b := phys.Generate(phys.ModelPlummer, n, 13)
		st := Step(b, Options{P: 8, Dt: 0})
		return st.TotalBytes()
	}
	b1, b4 := bytes(2000), bytes(8000)
	if b4 > b1*8 {
		t.Fatalf("bytes grew too fast: %d -> %d for 4x bodies", b1, b4)
	}
	if b1 <= 0 {
		t.Fatal("no communication counted")
	}
}

func TestMPStatspopulated(t *testing.T) {
	b := phys.Generate(phys.ModelPlummer, 2000, 3)
	st := Step(b, Options{P: 4})
	if st.TotalInteractions() == 0 {
		t.Fatal("no interactions")
	}
	for r, rs := range st.PerRank {
		if rs.Bodies == 0 || rs.TreeNodes == 0 {
			t.Fatalf("rank %d empty: %+v", r, rs)
		}
		if rs.MsgsSent < 3 { // 3 LETs + allreduce
			t.Fatalf("rank %d sent %d msgs", r, rs.MsgsSent)
		}
	}
	if st.Total() <= 0 {
		t.Fatal("no time recorded")
	}
}
