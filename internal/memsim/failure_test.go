package memsim

import (
	"strings"
	"testing"
)

// expectPanic runs f and verifies it panics with a message containing want.
func expectPanic(t *testing.T, want string, f func()) {
	t.Helper()
	defer func() {
		r := recover()
		if r == nil {
			t.Fatalf("no panic; want one containing %q", want)
		}
		msg, ok := r.(string)
		if !ok {
			if err, isErr := r.(error); isErr {
				msg = err.Error()
			}
		}
		if !strings.Contains(msg, want) {
			t.Fatalf("panic %q does not contain %q", msg, want)
		}
	}()
	f()
}

func TestUnlockWithoutLockPanics(t *testing.T) {
	expectPanic(t, "does not hold", func() {
		NewEngine(tiny(), 1).Run(func(p *Proc) {
			p.Unlock(3)
		})
	})
}

func TestUnlockOthersLockPanics(t *testing.T) {
	expectPanic(t, "does not hold", func() {
		NewEngine(tiny(), 2).Run(func(p *Proc) {
			if p.ID == 0 {
				p.Lock(1)
				p.Compute(1000)
				p.Unlock(1)
			} else {
				p.Compute(100)
				p.Unlock(1) // not the holder
			}
		})
	})
}

func TestBarrierLabelMismatchPanics(t *testing.T) {
	expectPanic(t, "label mismatch", func() {
		NewEngine(tiny(), 2).Run(func(p *Proc) {
			if p.ID == 0 {
				p.Barrier("a")
			} else {
				p.Barrier("b")
			}
		})
	})
}

func TestDeadlockDetected(t *testing.T) {
	// Both procs block on a lock the other will never release.
	expectPanic(t, "deadlock", func() {
		NewEngine(tiny(), 2).Run(func(p *Proc) {
			if p.ID == 0 {
				p.Lock(1)
				p.Lock(2) // blocks forever once proc 1 holds 2
			} else {
				p.Lock(2)
				p.Lock(1)
			}
		})
	})
}

func TestSelfDeadlockDetected(t *testing.T) {
	// Simulated locks are not reentrant.
	expectPanic(t, "deadlock", func() {
		NewEngine(tiny(), 1).Run(func(p *Proc) {
			p.Lock(1)
			p.Lock(1)
		})
	})
}

func TestTooManyProcsPanics(t *testing.T) {
	expectPanic(t, "more than 64", func() {
		NewEngine(tiny(), 65)
	})
}
