// Command simbench runs one whole-application configuration on a simulated
// platform and prints the detailed breakdown: per-phase simulated time,
// speedup over the platform's sequential baseline, per-processor lock
// counts, and coherence-protocol counters. The spec and its baseline run
// concurrently through the shared internal/runner engine.
//
// Usage:
//
//	simbench [-platform typhoon-hlrc] [-alg SPACE] [-n 16384] [-p 16]
//	         [-steps 2] [-timeout 0] [-check] [-http :9090] [-v info] [-json]
package main

import (
	"context"
	"flag"
	"fmt"
	"log/slog"
	"os"

	"partree/internal/core"
	"partree/internal/runner"
	"partree/internal/stats"
)

func main() {
	sf := runner.RegisterSpecFlags(flag.CommandLine, runner.Spec{
		Backend:  runner.Simulated,
		Platform: "typhoon-hlrc",
		Alg:      core.SPACE,
		Bodies:   16384,
		Procs:    16,
		Steps:    2,
	}, "dt", "theta")
	noSeq := flag.Bool("noseq", false, "skip the sequential baseline (faster)")
	obsFlags := runner.RegisterObsFlags(flag.CommandLine)
	flag.Parse()
	if _, err := obsFlags.SetupLogging("simbench"); err != nil {
		fmt.Fprintf(os.Stderr, "simbench: %v\n", err)
		os.Exit(2)
	}

	spec, err := sf.Spec()
	if err != nil {
		slog.Error("bad spec flags", "err", err)
		os.Exit(2)
	}
	specCtx := []any{"alg", spec.Alg.String(), "n", spec.Bodies, "p", spec.Procs, "seed", spec.Seed, "platform", spec.Platform}
	seqSpec := spec
	seqSpec.Alg = core.LOCAL
	seqSpec.Procs = 1
	seqSpec.Sequential = true
	// Both cells run concurrently; only the spec under study writes the
	// trace file (the baseline would race it onto the same path).
	seqSpec.Trace = ""

	r := runner.New(0)
	srv, err := obsFlags.Serve("simbench", r)
	if err != nil {
		slog.Error("starting obs server", "err", err)
		os.Exit(1)
	}
	if srv != nil {
		defer srv.Close()
	}
	specs := []runner.Spec{spec}
	if !*noSeq {
		specs = append(specs, seqSpec)
	}
	results := r.RunAll(context.Background(), specs)
	res := results[0]

	if sf.JSON() {
		if err := runner.WriteJSON(os.Stdout, results...); err != nil {
			slog.Error("writing JSON results", "err", err)
			os.Exit(1)
		}
		if res.Failed() {
			os.Exit(1)
		}
		return
	}
	if res.Failed() {
		slog.Error("spec failed", append(specCtx, "err", res.FailureMessage())...)
		os.Exit(1)
	}
	o, _ := res.Outcome()

	fmt.Printf("%v on %s: %d bodies, %d processors, %d measured steps\n\n",
		spec.Alg, o.Platform, spec.Bodies, spec.Procs, spec.Steps)
	t := stats.NewTable("phase", "simulated time", "share")
	total := o.TotalNs()
	for _, row := range []struct {
		name string
		ns   float64
	}{
		{"tree build", o.TreeNs},
		{"partition", o.PartNs},
		{"force calc", o.ForceNs},
		{"update", o.UpdateNs},
		{"total", total},
	} {
		t.Row(row.name, stats.Seconds(row.ns), fmt.Sprintf("%.1f%%", 100*row.ns/total))
	}
	t.Write(os.Stdout)

	if !*noSeq {
		seq := results[1]
		if seq.Failed() {
			slog.Error("sequential baseline failed", append(specCtx, "err", seq.FailureMessage())...)
			os.Exit(1)
		}
		fmt.Printf("\nsequential baseline: %s  ->  speedup %.2fx\n",
			stats.Seconds(seq.TotalNs), seq.TotalNs/total)
	}

	locks := stats.Summarize(o.LocksPerProc)
	fmt.Printf("\ntree-build locks/processor: mean %.0f [%.0f..%.0f], total %d\n",
		locks.Mean, locks.Min, locks.Max, o.TotalLocks())
	fmt.Printf("mean barrier time/processor: %s\n", stats.Seconds(o.MeanBarrierNs()))
	pr := o.Protocol
	fmt.Printf("protocol: accesses=%d hits=%d cold=%d coher=%d local=%d remote=%d dirty=%d inval=%d\n",
		pr.Accesses, pr.Hits, pr.ColdMisses, pr.CoherenceMiss, pr.LocalMisses, pr.RemoteMisses, pr.DirtyMisses, pr.Invalidations)
	fmt.Printf("          faults=%d twins=%d diffs=%d notices=%d contention=%s\n",
		pr.PageFaults, pr.Twins, pr.Diffs, pr.WriteNotices, stats.Seconds(pr.ContentionNs))
	fmt.Printf("interactions: %d\n", o.Interactions)
}
