package core

import (
	"testing"

	"partree/internal/phys"
)

// checkPartition verifies assign covers bodies 0..n-1 exactly once
// across exactly p chunks.
func checkPartition(t *testing.T, assign [][]int32, n, p int) {
	t.Helper()
	if len(assign) != p {
		t.Fatalf("want %d chunks, got %d", p, len(assign))
	}
	seen := make([]bool, n)
	total := 0
	for w, chunk := range assign {
		for _, b := range chunk {
			if b < 0 || int(b) >= n {
				t.Fatalf("chunk %d holds out-of-range body %d (n=%d)", w, b, n)
			}
			if seen[b] {
				t.Fatalf("body %d assigned twice", b)
			}
			seen[b] = true
			total++
		}
	}
	if total != n {
		t.Fatalf("partition covers %d of %d bodies", total, n)
	}
}

func TestEvenAssignEdgeCases(t *testing.T) {
	// Fewer bodies than processors: every body still lands somewhere,
	// surplus processors get empty (non-nil iteration-safe) chunks.
	checkPartition(t, EvenAssign(3, 8), 3, 8)
	// Single processor owns everything, in order.
	a := EvenAssign(5, 1)
	checkPartition(t, a, 5, 1)
	for i, b := range a[0] {
		if int(b) != i {
			t.Fatalf("p=1 chunk not in body order: %v", a[0])
		}
	}
	// No bodies at all.
	checkPartition(t, EvenAssign(0, 4), 0, 4)
	// Balance: chunk sizes differ by at most one.
	for _, tc := range []struct{ n, p int }{{10, 3}, {1, 2}, {16, 16}, {17, 4}} {
		a := EvenAssign(tc.n, tc.p)
		checkPartition(t, a, tc.n, tc.p)
		min, max := tc.n, 0
		for _, c := range a {
			if len(c) < min {
				min = len(c)
			}
			if len(c) > max {
				max = len(c)
			}
		}
		if max-min > 1 {
			t.Fatalf("EvenAssign(%d,%d) unbalanced: min=%d max=%d", tc.n, tc.p, min, max)
		}
	}
}

func TestSpatialAssignEdgeCases(t *testing.T) {
	for _, tc := range []struct{ n, p int }{{3, 8}, {5, 1}, {0, 4}, {64, 7}} {
		b := phys.Generate(phys.ModelPlummer, tc.n, 42)
		checkPartition(t, SpatialAssign(b, tc.p), tc.n, tc.p)
	}
}

func TestMetricsZeroProcessors(t *testing.T) {
	m := &Metrics{Alg: SPACE}
	if got := m.TotalLocks(); got != 0 {
		t.Fatalf("TotalLocks with no processors = %d", got)
	}
	if got := m.LocksPerProc(); len(got) != 0 {
		t.Fatalf("LocksPerProc with no processors = %v", got)
	}
	if m.TotalCells() != 0 || m.TotalLeaves() != 0 || m.TotalRetries() != 0 || m.TotalBodiesMoved() != 0 {
		t.Fatal("zero-processor totals must be zero")
	}
	if s := m.String(); s == "" {
		t.Fatal("String on empty metrics")
	}
}

func TestMetricsAggregation(t *testing.T) {
	m := newMetrics(LOCAL, 3)
	m.PerP[0].Locks, m.PerP[1].Locks, m.PerP[2].Locks = 5, 0, 7
	m.PerP[0].Cells, m.PerP[2].Leaves = 2, 4
	m.PerP[1].Retries, m.PerP[1].BodiesMoved = 3, 9
	if got := m.TotalLocks(); got != 12 {
		t.Fatalf("TotalLocks = %d, want 12", got)
	}
	want := []int64{5, 0, 7}
	got := m.LocksPerProc()
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("LocksPerProc = %v, want %v", got, want)
		}
	}
	if m.TotalCells() != 2 || m.TotalLeaves() != 4 || m.TotalRetries() != 3 || m.TotalBodiesMoved() != 9 {
		t.Fatalf("aggregation wrong: %s", m)
	}
}
