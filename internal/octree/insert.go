package octree

import "partree/internal/vec"

// NewTree allocates a root cell covering cube in the given arena and
// returns a tree rooted at it. All builders — including the paper's — make
// the root a cell up front ("the dimensions of the root cell of the tree
// are determined from the current positions of the particles").
func NewTree(s *Store, arenaID, owner int, cube vec.Cube) *Tree {
	root, _ := s.AllocCell(arenaID, cube, Nil, owner)
	return &Tree{Store: s, Root: root}
}

// Insert adds body b (with positions supplied by pos) into the subtree
// rooted at the cell root, which sits at depth rootDepth. It is
// single-threaded with respect to that subtree: the sequential builder,
// PARTREE's private local trees, and SPACE's private subtrees all use it.
// Concurrent insertion into a shared tree lives in internal/core, which
// adds the locking discipline the paper describes.
func (s *Store) Insert(root Ref, rootDepth, arenaID, owner int, b int32, pos []vec.V3) {
	p := pos[b]
	cur := root
	depth := rootDepth
	for {
		c := s.Cell(cur)
		o := c.Cube.OctantOf(p)
		ch := c.Child(o)
		switch {
		case ch.IsNil():
			lr, l := s.AllocLeaf(arenaID, c.Cube.Child(o), cur, owner)
			l.Bodies = append(l.Bodies, b)
			c.SetChild(o, lr)
			return

		case ch.IsLeaf():
			l := s.Leaf(ch)
			if len(l.Bodies) < s.LeafCap || depth+1 >= s.MaxDepth {
				l.Bodies = append(l.Bodies, b)
				return
			}
			// Subdivide: replace the full leaf with a cell and
			// redistribute its bodies one level down, then keep
			// descending to place b.
			cr, _ := s.AllocCell(arenaID, l.Cube, cur, owner)
			for _, ob := range l.Bodies {
				s.Insert(cr, depth+1, arenaID, owner, ob, pos)
			}
			l.Retired = true
			c.SetChild(o, cr)
			cur = cr
			depth++

		default: // internal cell
			cur = ch
			depth++
		}
	}
}

// BuildSerial constructs the canonical octree for the given positions:
// a fresh store with a single arena, bodies inserted in index order.
// This is the reference ("best sequential") implementation every parallel
// builder is checked against.
func BuildSerial(pos []vec.V3, leafCap int) *Tree {
	s := NewStore(1, leafCap)
	cube := vec.BoundingCube(len(pos), func(i int) vec.V3 { return pos[i] }, 1e-4)
	t := NewTree(s, 0, 0, cube)
	for i := range pos {
		s.Insert(t.Root, 0, 0, 0, int32(i), pos)
	}
	return t
}

// BuildSerialInto is BuildSerial against a caller-owned store (reused
// across time steps via Reset) and a caller-chosen root cube.
func BuildSerialInto(s *Store, cube vec.Cube, pos []vec.V3) *Tree {
	t := NewTree(s, 0, 0, cube)
	for i := range pos {
		s.Insert(t.Root, 0, 0, 0, int32(i), pos)
	}
	return t
}
