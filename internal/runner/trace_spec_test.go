package runner

import (
	"context"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"partree/internal/core"
)

// chromeEvent is the subset of the trace_event record the tests decode.
type chromeEvent struct {
	Name string `json:"name"`
	Cat  string `json:"cat"`
	Ph   string `json:"ph"`
	Tid  int    `json:"tid"`
	Args struct {
		WaitNs int64 `json:"wait_ns"`
		HoldNs int64 `json:"hold_ns"`
	} `json:"args"`
}

func readChromeTrace(t *testing.T, path string) []chromeEvent {
	t.Helper()
	buf, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var evs []chromeEvent
	if err := json.Unmarshal(buf, &evs); err != nil {
		t.Fatalf("%s is not a JSON trace_event array: %v", path, err)
	}
	return evs
}

// TestTracedSpecWritesConsistentTimeline runs one traced spec per
// backend and checks the whole chain: the file exists and parses as a
// Chrome trace_event array, its per-processor lock-event counts equal
// the Result's LocksPerProc, and TraceSummary agrees.
func TestTracedSpecWritesConsistentTimeline(t *testing.T) {
	dir := t.TempDir()
	specs := map[string]Spec{
		"native-build": {Backend: Native, Alg: core.ORIG, Procs: 4, Bodies: 2048,
			Steps: 2, Seed: 7, BuildOnly: true, Check: true},
		"simulated": {Backend: Simulated, Platform: "challenge", Alg: core.ORIG,
			Procs: 4, Bodies: 1024, Steps: 1, Seed: 7},
	}
	for name, spec := range specs {
		t.Run(name, func(t *testing.T) {
			spec.Trace = filepath.Join(dir, name+".json")
			res := New(0).Run(context.Background(), spec)
			if res.Failed() {
				t.Fatalf("run failed: %s", res.FailureMessage())
			}
			sum, ok := res.TraceSummary()
			if !ok {
				t.Fatal("traced spec returned no TraceSummary")
			}
			perProc := sum.LockEventsPerProc()
			if len(perProc) != spec.Procs {
				t.Fatalf("summary covers %d procs, want %d", len(perProc), spec.Procs)
			}

			// Build-only native results report the final repetition's lock
			// counters and the trace covers that same repetition; simulated
			// results and traces both cover every measured step. Either
			// way: exact per-processor equality.
			fileLocks := make([]int64, spec.Procs)
			for _, e := range readChromeTrace(t, spec.Trace) {
				if e.Cat == "lock" {
					fileLocks[e.Tid]++
				}
			}
			for w := 0; w < spec.Procs; w++ {
				if fileLocks[w] != perProc[w] {
					t.Errorf("proc %d: file has %d lock events, summary %d", w, fileLocks[w], perProc[w])
				}
				if want := res.LocksPerProc[w]; perProc[w] != want {
					t.Errorf("proc %d: %d trace lock events, result counters say %d", w, perProc[w], want)
				}
			}
		})
	}
}

// TestTraceIsPartOfSpecIdentity pins that a traced and an untraced run
// of the same cell do not share a cache entry (the trace file must be
// written even when the untraced twin ran first).
func TestTraceIsPartOfSpecIdentity(t *testing.T) {
	dir := t.TempDir()
	plain := Spec{Backend: Simulated, Platform: "challenge", Alg: core.SPACE,
		Procs: 2, Bodies: 512, Steps: 1, Seed: 7}
	traced := plain
	traced.Trace = filepath.Join(dir, "cell.json")
	r := New(0)
	if res := r.Run(context.Background(), plain); res.Failed() {
		t.Fatalf("plain run failed: %s", res.FailureMessage())
	}
	if res := r.Run(context.Background(), traced); res.Failed() {
		t.Fatalf("traced run failed: %s", res.FailureMessage())
	}
	if _, err := os.Stat(traced.Trace); err != nil {
		t.Fatalf("trace file not written after cached untraced run: %v", err)
	}
	if plain.Key() == traced.Key() {
		t.Fatal("traced spec shares a cache key with its untraced twin")
	}
}
