package partition

import (
	"math"
	"math/rand"
	"testing"

	"partree/internal/vec"
)

// TestMortonKeyMatchesCube is the differential gate behind the
// MortonKey unification: the exported partition.MortonKey must agree
// bit-for-bit with the geometric primitive vec.Cube.Morton it
// canonicalizes, over random domains and positions including points
// outside the domain (which clamp to its faces).
func TestMortonKeyMatchesCube(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	for trial := 0; trial < 20; trial++ {
		domain := vec.Cube{
			Center: vec.V3{X: r.NormFloat64(), Y: r.NormFloat64(), Z: r.NormFloat64()},
			Size:   math.Ldexp(1+r.Float64(), r.Intn(10)-5),
		}
		for i := 0; i < 2000; i++ {
			// Span inside, on, and well outside the cube.
			h := domain.Size * 1.5
			p := vec.V3{
				X: domain.Center.X + (r.Float64()-0.5)*h,
				Y: domain.Center.Y + (r.Float64()-0.5)*h,
				Z: domain.Center.Z + (r.Float64()-0.5)*h,
			}
			if got, want := MortonKey(domain, p), domain.Morton(p); got != want {
				t.Fatalf("trial %d: MortonKey(%v, %v) = %#x, cube.Morton = %#x",
					trial, domain, p, got, want)
			}
		}
	}
}

func TestMortonKeyRange(t *testing.T) {
	domain := vec.Cube{Size: 2}
	corners := []vec.V3{
		{X: -1, Y: -1, Z: -1}, {X: 1, Y: 1, Z: 1},
		{X: -100, Y: -100, Z: -100}, {X: 100, Y: 100, Z: 100},
	}
	for _, p := range corners {
		k := MortonKey(domain, p)
		if k >= KeySpace {
			t.Fatalf("MortonKey(%v) = %#x escapes [0, KeySpace)", p, k)
		}
	}
	if lo := MortonKey(domain, vec.V3{X: -100, Y: -100, Z: -100}); lo != 0 {
		t.Fatalf("far low corner should clamp to key 0, got %#x", lo)
	}
	if hi := MortonKey(domain, vec.V3{X: 100, Y: 100, Z: 100}); hi != KeySpace-1 {
		t.Fatalf("far high corner should clamp to KeySpace-1, got %#x", hi)
	}
}

// TestMortonKeyOrderIsSpatial pins the property the shard map depends
// on: along each axis, keys are monotone in the quantized coordinate, so
// contiguous key ranges are spatially contiguous.
func TestMortonKeyOrderIsSpatial(t *testing.T) {
	domain := vec.Cube{Size: 1}
	prev := uint64(0)
	for i := 0; i < 16; i++ {
		// March along the main diagonal: Morton order visits diagonal
		// cells in increasing key order.
		f := (float64(i)+0.5)/16 - 0.5
		k := MortonKey(domain, vec.V3{X: f, Y: f, Z: f})
		if i > 0 && k <= prev {
			t.Fatalf("diagonal step %d: key %#x not past %#x", i, k, prev)
		}
		prev = k
	}
}
