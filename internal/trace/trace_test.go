package trace

import (
	"reflect"
	"testing"
)

// TestNilSafety pins the no-op contract tracing compiles down to when
// disabled: every emit hook on a nil handle (or from a nil recorder)
// must be safe and record nothing.
func TestNilSafety(t *testing.T) {
	var r *Recorder
	if r.Active() {
		t.Error("nil recorder reports Active")
	}
	if r.Procs() != 0 {
		t.Error("nil recorder reports processors")
	}
	if got := r.Proc(0); got != nil {
		t.Errorf("nil recorder Proc(0) = %v, want nil", got)
	}
	if s := r.Summarize(); s != nil {
		t.Errorf("nil recorder Summarize = %v, want nil", s)
	}
	if ev := r.Events(0); ev != nil {
		t.Errorf("nil recorder Events = %v, want nil", ev)
	}
	r.SetEnabled(true) // must not panic
	r.Reset()

	var p *P
	if p.Active() {
		t.Error("nil handle reports Active")
	}
	if p.Now() != 0 {
		t.Error("nil handle Now != 0")
	}
	p.SpanAt(PhaseInsert, 0, 10)
	p.Span(PhaseInsert, 0)
	p.LockAcquired(0)
	p.LockReleased()
	p.LockAt(0, 1, 2)

	// Out-of-range processor indexes degrade to the nil handle too.
	live := New(2)
	if got := live.Proc(2); got != nil {
		t.Errorf("Proc(2) on a 2-proc recorder = %v, want nil", got)
	}
	if got := live.Proc(-1); got != nil {
		t.Errorf("Proc(-1) = %v, want nil", got)
	}
}

func TestDisabledRecorderEmitsNothing(t *testing.T) {
	r := New(1)
	p := r.Proc(0)
	if p.Active() {
		t.Fatal("fresh recorder should start disabled")
	}
	p.SpanAt(PhaseInsert, 0, 100)
	p.LockAt(0, 10, 20)
	s := r.Summarize()
	if s.PerProc[0].Spans != 0 || s.PerProc[0].LockEvents != 0 {
		t.Errorf("disabled recorder recorded events: %+v", s.PerProc[0])
	}
}

func TestSpanAndLockAggregation(t *testing.T) {
	r := NewWithCapacity(2, 16)
	r.SetEnabled(true)
	p0, p1 := r.Proc(0), r.Proc(1)

	p0.SpanAt(PhasePartition, 0, 100)
	p0.SpanAt(PhaseInsert, 100, 400)
	p0.SpanAt(PhaseInsert, 500, 700)
	p0.LockAt(10, 30, 90)    // wait 20, hold 60
	p0.LockAt(200, 200, 210) // wait 0, hold 10
	p1.SpanAt(PhaseInsert, 100, 600)

	s := r.Summarize()
	ps := s.PerProc[0]
	if ps.PhaseNs[PhasePartition] != 100 || ps.PhaseNs[PhaseInsert] != 500 {
		t.Errorf("phaseNs = %v", ps.PhaseNs)
	}
	if ps.Spans != 3 || ps.LockEvents != 2 {
		t.Errorf("spans=%d lockEvents=%d, want 3/2", ps.Spans, ps.LockEvents)
	}
	if ps.LockWaitNs != 20 || ps.LockHoldNs != 70 {
		t.Errorf("wait=%d hold=%d, want 20/70", ps.LockWaitNs, ps.LockHoldNs)
	}
	if ps.HoldMaxNs != 60 {
		t.Errorf("HoldMaxNs = %d, want 60", ps.HoldMaxNs)
	}
	if got := s.TotalLockEvents(); got != 2 {
		t.Errorf("TotalLockEvents = %d, want 2", got)
	}
	if got := s.LockEventsPerProc(); !reflect.DeepEqual(got, []int64{2, 0}) {
		t.Errorf("LockEventsPerProc = %v", got)
	}
	// Insert imbalance: times {500, 500} -> perfectly balanced.
	if got := s.ImbalanceRatio(); got != 1 {
		t.Errorf("ImbalanceRatio = %v, want 1", got)
	}
}

func TestLockStaging(t *testing.T) {
	r := New(1)
	r.SetEnabled(true)
	p := r.Proc(0)
	start := p.Now()
	p.LockAcquired(start)
	p.LockReleased()
	ev := r.Events(0)
	if len(ev) != 1 || ev[0].Kind != KindLock {
		t.Fatalf("events = %v, want one lock event", ev)
	}
	e := ev[0]
	if e.Start > e.Acquired || e.Acquired > e.End {
		t.Errorf("lock timestamps out of order: %+v", e)
	}
	if s := r.Summarize(); s.PerProc[0].LockEvents != 1 {
		t.Errorf("LockEvents = %d, want 1", s.PerProc[0].LockEvents)
	}
}

// TestRingWrap pins that the ring keeps the newest events in order while
// the emit-time aggregates still cover everything, reporting the
// eviction count as Dropped.
func TestRingWrap(t *testing.T) {
	r := NewWithCapacity(1, 4)
	r.SetEnabled(true)
	p := r.Proc(0)
	for i := int64(0); i < 10; i++ {
		p.SpanAt(PhaseInsert, i, i+1)
	}
	ev := r.Events(0)
	if len(ev) != 4 {
		t.Fatalf("got %d buffered events, want 4", len(ev))
	}
	for i, e := range ev {
		if want := int64(6 + i); e.Start != want {
			t.Errorf("event %d starts at %d, want %d (newest four, oldest first)", i, e.Start, want)
		}
	}
	s := r.Summarize()
	if s.PerProc[0].Spans != 10 {
		t.Errorf("Spans = %d, want 10 (aggregates must survive the wrap)", s.PerProc[0].Spans)
	}
	if s.PerProc[0].PhaseNs[PhaseInsert] != 10 {
		t.Errorf("insert ns = %d, want 10", s.PerProc[0].PhaseNs[PhaseInsert])
	}
	if s.PerProc[0].Dropped != 6 {
		t.Errorf("Dropped = %d, want 6", s.PerProc[0].Dropped)
	}
}

func TestResetClearsBetweenBuilds(t *testing.T) {
	r := New(2)
	r.SetEnabled(true)
	r.Proc(0).SpanAt(PhaseInsert, 0, 50)
	r.Proc(1).LockAt(0, 5, 9)
	r.Reset()
	if !r.Active() {
		t.Error("Reset must keep the enabled flag")
	}
	s := r.Summarize()
	for w, ps := range s.PerProc {
		if ps.Spans != 0 || ps.LockEvents != 0 || ps.PhaseNs[PhaseInsert] != 0 {
			t.Errorf("proc %d not cleared by Reset: %+v", w, ps)
		}
	}
	if ev := r.Events(0); len(ev) != 0 {
		t.Errorf("events survive Reset: %v", ev)
	}
}

func TestImbalanceRatioEdgeCases(t *testing.T) {
	if got := (*Summary)(nil).ImbalanceRatio(); got != 0 {
		t.Errorf("nil summary ImbalanceRatio = %v, want 0", got)
	}
	r := New(4)
	if got := r.Summarize().ImbalanceRatio(); got != 0 {
		t.Errorf("empty ImbalanceRatio = %v, want 0", got)
	}
	r.SetEnabled(true)
	// One processor did all the insert work: max/mean = 300/75 = 4.
	r.Proc(2).SpanAt(PhaseInsert, 0, 300)
	if got := r.Summarize().ImbalanceRatio(); got != 4 {
		t.Errorf("ImbalanceRatio = %v, want 4", got)
	}
}
