package core

import (
	"testing"

	"partree/internal/octree"
	"partree/internal/phys"
)

func TestFallbackControllerThresholds(t *testing.T) {
	// Policy with no cooldown/streak noise so each case isolates the
	// threshold comparison itself.
	base := FallbackPolicy{MaxChurnFrac: 0.25, MaxDepthSkew: 2.5, Streak: 1, MinSteps: 1}
	cases := []struct {
		name  string
		churn float64
		skew  float64
		want  bool
	}{
		{"quiet", 0.01, 1.2, false},
		{"churn at threshold stays put", 0.25, 1.2, false},
		{"churn above threshold", 0.26, 1.2, true},
		{"skew at threshold stays put", 0.01, 2.5, false},
		{"skew above threshold", 0.01, 2.51, true},
		{"both above", 0.9, 9.0, true},
		{"zero skew ignored", 0.01, 0, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			c := NewFallbackController(base)
			if got := c.Observe(tc.churn, tc.skew, false); got != tc.want {
				t.Fatalf("Observe(churn=%v, skew=%v) = %v, want %v", tc.churn, tc.skew, got, tc.want)
			}
		})
	}
}

func TestFallbackControllerDefaults(t *testing.T) {
	p := NewFallbackController(FallbackPolicy{}).Policy()
	want := FallbackPolicy{MaxChurnFrac: 0.25, MaxDepthSkew: 2.5, Streak: 2, MinSteps: 8}
	if p != want {
		t.Fatalf("defaulted policy = %+v, want %+v", p, want)
	}
}

func TestFallbackControllerStreakHysteresis(t *testing.T) {
	c := NewFallbackController(FallbackPolicy{MaxChurnFrac: 0.25, MaxDepthSkew: 2.5, Streak: 3, MinSteps: 1})
	// Alternating over/under never builds a streak: no flapping on the
	// boundary even though half the steps are over threshold.
	for i := 0; i < 20; i++ {
		churn := 0.5
		if i%2 == 1 {
			churn = 0.1
		}
		if c.Observe(churn, 1.0, false) {
			t.Fatalf("rebuild fired at alternating step %d without a streak", i)
		}
	}
	// Three consecutive over-threshold steps do fire.
	c.Observe(0.5, 1.0, false)
	c.Observe(0.5, 1.0, false)
	if !c.Observe(0.5, 1.0, false) {
		t.Fatal("rebuild did not fire after Streak consecutive over-threshold steps")
	}
}

func TestFallbackControllerCooldown(t *testing.T) {
	c := NewFallbackController(FallbackPolicy{MaxChurnFrac: 0.25, MaxDepthSkew: 2.5, Streak: 1, MinSteps: 5})
	// Hot from the very first step, but the cooldown holds it back
	// until sinceRebuild reaches MinSteps.
	for i := 1; i <= 4; i++ {
		if c.Observe(0.9, 1.0, false) {
			t.Fatalf("rebuild fired at step %d, inside the %d-step cooldown", i, 5)
		}
	}
	if !c.Observe(0.9, 1.0, false) {
		t.Fatal("rebuild did not fire once the cooldown elapsed")
	}
	// The verdict latches until a fresh build is observed...
	if !c.Observe(0.0, 1.0, false) {
		t.Fatal("pending rebuild verdict did not latch")
	}
	// ...and a fresh build resets everything, restarting the cooldown.
	if c.Observe(0.0, 1.0, true) {
		t.Fatal("fresh build did not clear the pending verdict")
	}
	if c.Observe(0.9, 1.0, false) {
		t.Fatal("cooldown did not restart after the fresh build")
	}
}

// TestStepperPlummerCollapse runs a Plummer model through a violent
// contraction: every body's position shrinks toward the origin each
// step, so boundary-crossing churn explodes and the fallback policy must
// fire — and with a cooldown longer than the remaining sequence, it must
// fire exactly once, as a SPACE-style requested rebuild.
func TestStepperPlummerCollapse(t *testing.T) {
	const n, p, steps = 2000, 4, 24
	b := phys.Generate(phys.ModelPlummer, n, 42)
	st := NewStepper(Config{P: p, LeafCap: 8},
		b,
		FallbackPolicy{MaxChurnFrac: 0.2, MaxDepthSkew: 100, Streak: 2, MinSteps: 4})

	rebuilds := 0
	for i := 0; i < steps; i++ {
		if i > 0 {
			// Collapse, not uniform scaling: uniform contraction is a
			// no-op for churn because UPDATE rescales the whole tree with
			// the root bounds. Outer shells fall faster (free-fall-like
			// profile), so relative positions shear and bodies cross
			// leaf boundaries in bulk.
			for j := range b.Pos {
				r := b.Pos[j].Len()
				b.Pos[j] = b.Pos[j].Scale(1 / (1 + 0.4*r))
			}
		}
		res := st.Step(StepInput{})
		if res.Step != i {
			t.Fatalf("step %d: result.Step = %d", i, res.Step)
		}
		if i == 0 {
			if !res.Fresh || res.Reason != FreshFirst {
				t.Fatalf("step 0: fresh=%v reason=%q, want first fresh build", res.Fresh, res.Reason)
			}
			continue
		}
		if res.Fallback {
			rebuilds++
			if !res.Fresh || res.Reason != FreshRequested {
				t.Fatalf("step %d: fallback step has fresh=%v reason=%q", i, res.Fresh, res.Reason)
			}
			if res.Metrics.TotalLocks() != 0 {
				t.Fatalf("step %d: SPACE fallback rebuild took %d locks, want 0", i, res.Metrics.TotalLocks())
			}
			// After the rebuild, contraction stops: the cooldown plus a
			// quiet tail must not trigger a second rebuild.
			for k := i + 1; k < steps; k++ {
				if tail := st.Step(StepInput{}); tail.Fallback {
					t.Fatalf("step %d: second fallback rebuild on a quiet tail", k)
				}
			}
			break
		}
	}
	if rebuilds != 1 {
		t.Fatalf("Plummer collapse triggered %d fallback rebuilds, want exactly 1", rebuilds)
	}
}

// TestStepperVerifiedSteps checks the stepper's trees stay structurally
// valid across repairs and a caller-forced rebuild.
func TestStepperVerifiedSteps(t *testing.T) {
	const n, p = 1500, 4
	b := phys.Generate(phys.ModelPlummer, n, 7)
	st := NewStepper(Config{P: p, LeafCap: 8}, b, DefaultFallbackPolicy())
	for i := 0; i < 6; i++ {
		if i > 0 {
			b.Drift(0, n, 0.01)
		}
		in := StepInput{Rebuild: i == 3}
		res := st.Step(in)
		if i == 3 && (!res.Fresh || res.Reason != FreshRequested) {
			t.Fatalf("forced rebuild step: fresh=%v reason=%q", res.Fresh, res.Reason)
		}
		if i == 3 && res.Fallback {
			t.Fatal("caller-forced rebuild must not be reported as a policy fallback")
		}
		d := octree.BodyData{Pos: b.Pos, Mass: b.Mass, Cost: b.Cost}
		if err := octree.Check(res.Tree, d, octree.CheckOptions{Canonical: res.Fresh, Moments: true, Tol: 1e-9}); err != nil {
			t.Fatalf("step %d invariants: %v", i, err)
		}
	}
}
