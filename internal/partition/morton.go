package partition

import "partree/internal/vec"

// The Morton keying below is the one spatial-ordering primitive every
// layer shares: SPACE's subspace-to-processor assignment, the spatially
// compact body partitions core.SpatialAssign fakes a settled costzones
// cut with, the simulated SPACE replay, and — at the cluster level — the
// shard map that splits the domain into spatially contiguous key ranges
// for a partreed fleet. It used to live as an unexported detail of the
// build path (vec.Cube.Morton called ad hoc from three places); exporting
// one canonical function here makes the keying a contract rather than a
// coincidence. vec.Cube.Morton remains as the low-level geometric
// primitive; TestMortonKeyMatchesCube pins the two byte-for-byte equal so
// they can never drift apart silently.

const (
	// KeyBits is the number of bits quantized per axis; a full key
	// interleaves three axes into 3*KeyBits bits.
	KeyBits = 16
	// KeySpace is one past the largest possible Morton key: keys lie in
	// [0, KeySpace). Shard maps partition exactly this interval.
	KeySpace = uint64(1) << (3 * KeyBits)
)

// MortonKey returns the Z-order (Morton) key of p within the domain
// cube, using KeyBits bits per axis. Sorting spatial positions by their
// Morton key recovers the octree's depth-first order, so contiguous key
// ranges are spatially compact — the property that makes both SPACE's
// subspace grouping (paper Figure 5) and a cluster's Morton-range shard
// map locality-preserving. Positions outside the domain clamp to its
// faces, so every position maps to some key and key comparisons stay
// total.
//
// Two positions compare equal once they quantize to the same cell of the
// 2^KeyBits-per-axis grid; callers that need a deterministic total order
// (the assignment sorts) break ties on index.
func MortonKey(domain vec.Cube, p vec.V3) uint64 {
	scale := float64(uint64(1)<<KeyBits) / domain.Size
	min := domain.Min()
	qx := quantizeKey((p.X - min.X) * scale)
	qy := quantizeKey((p.Y - min.Y) * scale)
	qz := quantizeKey((p.Z - min.Z) * scale)
	var key uint64
	for i := 0; i < KeyBits; i++ {
		key |= (qx>>i&1)<<(3*i) | (qy>>i&1)<<(3*i+1) | (qz>>i&1)<<(3*i+2)
	}
	return key
}

// quantizeKey clamps a scaled coordinate into [0, 2^KeyBits).
func quantizeKey(x float64) uint64 {
	if x < 0 {
		return 0
	}
	if max := float64(uint64(1)<<KeyBits - 1); x > max {
		return uint64(max)
	}
	return uint64(x)
}
