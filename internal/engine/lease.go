package engine

import (
	"context"
	"errors"
	"sync"
	"time"

	"partree/internal/core"
	"partree/internal/reqtrace"
)

// Lease sentinels. Like the acquire sentinels they surface to HTTP
// callers (as a 503 before the stream opens, or an in-stream error
// record afterwards), so their text is part of the service contract.
var (
	// ErrLeasesFull rejects an OpenLease past Options.MaxLeases.
	ErrLeasesFull = errors.New("engine: leases full")
	// ErrLeaseClosed rejects a Step on a lease that was closed.
	ErrLeaseClosed = errors.New("engine: lease closed")
	// ErrLeaseEvicted rejects a Step on a lease the idle janitor evicted.
	ErrLeaseEvicted = errors.New("engine: lease evicted (idle)")
)

// wheelSlots is the deadline wheel's size. Idle timeouts are coarse
// (seconds to minutes) and the wheel re-checks a lease at most once per
// revolution, so a small power of two is plenty.
const wheelSlots = 64

// Lease is one long-lived simulation session: a pinned core.Stepper
// (resident UPDATE builder + body state + fallback controller) plus the
// lifecycle around it. Leases are capacity-accounted separately from
// one-shot build slots — an idle lease holds memory, not a build slot —
// but every Step borrows a build slot for its duration, so step CPU and
// one-shot build CPU share the engine's single MaxActive budget.
//
// A lease is owned by one stream handler; Step and Close may race with
// the idle janitor and with Drain, never with each other.
type Lease struct {
	eng *Engine
	st  *core.Stepper

	// mu serializes Step against Close/evict. Lock order: l.mu before
	// e.mu; nothing takes l.mu while holding e.mu.
	mu      sync.Mutex
	closed  bool
	evicted bool
	done    chan struct{}

	idle time.Duration
	// deadline is the idle eviction instant in unixnanos, refreshed
	// (lazily — no wheel traffic) after every step. The wheel re-buckets
	// when a bucket fires and finds the deadline moved.
	deadline int64 // guarded by eng.wheelMu together with slot
	slot     int   // current wheel bucket, -1 once removed
}

// Stepper returns the pinned stepper for callers that need the body
// state or step counter. Mutating bodies between Step calls is the
// owner's job; the janitor never touches them.
func (l *Lease) Stepper() *core.Stepper { return l.st }

// Done is closed when the lease ends for any reason — Close, idle
// eviction, or engine drain. Stream handlers select on it to end their
// stream when the server side gives up first.
func (l *Lease) Done() <-chan struct{} { return l.done }

// Evicted reports whether the lease was ended by the idle janitor.
func (l *Lease) Evicted() bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.evicted
}

// OpenLease pins st into a new session lease. idle <= 0 selects
// Options.LeaseIdle. Rejects with ErrLeasesFull past Options.MaxLeases
// and ErrDraining once Drain has begun.
func (e *Engine) OpenLease(st *core.Stepper, idle time.Duration) (*Lease, error) {
	if idle <= 0 {
		idle = e.opts.LeaseIdle
	}
	l := &Lease{eng: e, st: st, done: make(chan struct{}), idle: idle, slot: -1}

	e.mu.Lock()
	switch {
	case e.draining:
		e.mu.Unlock()
		e.leaseRejected.Add(1)
		return nil, ErrDraining
	case e.opts.MaxLeases >= 0 && len(e.leases) >= e.opts.MaxLeases:
		e.mu.Unlock()
		e.leaseRejected.Add(1)
		return nil, ErrLeasesFull
	}
	e.leases[l] = struct{}{}
	e.leasesOpened.Add(1)
	if !e.janitorRunning {
		e.janitorRunning = true
		go e.leaseJanitor()
	}
	e.mu.Unlock()

	e.armLease(l, time.Now().Add(idle))
	return l, nil
}

// Step runs one timestep through the lease's pinned builder. It borrows
// a build slot (waiting up to ctx, aborting with ErrDraining if a drain
// starts first) so concurrent session steps and one-shot builds share
// MaxActive.
func (l *Lease) Step(ctx context.Context, in core.StepInput) (*core.StepResult, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	switch {
	case l.evicted:
		return nil, ErrLeaseEvicted
	case l.closed:
		return nil, ErrLeaseClosed
	}
	e := l.eng
	if err := e.acquireSlot(ctx); err != nil {
		return nil, err
	}
	t0 := time.Now()
	res := l.st.Step(in)
	dur := time.Since(t0)
	<-e.slots

	// Stamp the step onto the request's span context: the build wall
	// span, the core phase breakdown (maintained by every build), and —
	// when the stepper traces (adaptive sessions) — the per-processor
	// phase summary, bridged verbatim.
	if rq := reqtrace.FromContext(ctx); rq != nil {
		rq.SpanAt("build", t0, t0.Add(dur))
		t := res.Metrics.Timing
		rq.AddBuildPhases(t.Bounds, t.Insert, t.Moments)
		rq.BridgeTrace(res.Metrics.Trace)
	}

	mode := "update"
	if res.Fresh {
		mode = "rebuild"
	}
	e.stepSeconds.With(mode).Observe(dur.Seconds())
	if res.Fallback {
		e.leaseFallbacks.Add(1)
	}
	// An unplanned rebuild: the builder started over on a step where the
	// caller expected incremental repair (not step 0, not requested).
	if res.Fresh && res.Reason != core.FreshFirst && res.Reason != core.FreshStep0 &&
		res.Reason != core.FreshRequested {
		e.leaseUnplanned.Add(1)
	}

	e.wheelMu.Lock()
	l.deadline = time.Now().Add(l.idle).UnixNano()
	e.wheelMu.Unlock()
	return res, nil
}

// Close ends the lease. Idempotent; safe to call after eviction.
func (l *Lease) Close() {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.closeLocked(false)
}

// closeLocked finishes the lease under l.mu. evict marks a janitor
// eviction (counted separately and surfaced via ErrLeaseEvicted).
func (l *Lease) closeLocked(evict bool) {
	if l.closed {
		return
	}
	l.closed = true
	l.evicted = evict
	close(l.done)
	e := l.eng

	e.wheelMu.Lock()
	if l.slot >= 0 {
		delete(e.wheel[l.slot], l)
		l.slot = -1
	}
	e.wheelMu.Unlock()

	e.mu.Lock()
	delete(e.leases, l)
	e.mu.Unlock()
	if evict {
		e.leasesEvicted.Add(1)
	} else {
		e.leasesClosed.Add(1)
	}
}

// armLease places l in the wheel bucket for its deadline.
func (e *Engine) armLease(l *Lease, deadline time.Time) {
	e.wheelMu.Lock()
	defer e.wheelMu.Unlock()
	l.deadline = deadline.UnixNano()
	slot := e.wheelSlot(l.deadline)
	if l.slot == slot {
		return
	}
	if l.slot >= 0 {
		delete(e.wheel[l.slot], l)
	}
	if e.wheel[slot] == nil {
		e.wheel[slot] = map[*Lease]struct{}{}
	}
	e.wheel[slot][l] = struct{}{}
	l.slot = slot
}

func (e *Engine) wheelSlot(deadlineNanos int64) int {
	return int((deadlineNanos / int64(e.opts.LeaseTick))) & (wheelSlots - 1)
}

// leaseJanitor is the deadline wheel driver: every LeaseTick it sweeps
// the buckets whose turn came up, re-buckets leases whose deadline moved
// (the lazy re-arm Step performs), and evicts the truly expired. It
// exits when the engine drains or the last lease ends.
func (e *Engine) leaseJanitor() {
	tk := time.NewTicker(e.opts.LeaseTick)
	defer tk.Stop()
	// Sweep only fully-elapsed tick quanta: bucket t is visited once
	// now ≥ (t+1)·tick, so every deadline bucketed there has expired.
	// Sweeping the still-running quantum would find deadlines a few ms
	// in the future, fail to re-bucket them (same slot), and not come
	// back until the wheel wraps — a full revolution late.
	last := time.Now().UnixNano()/int64(e.opts.LeaseTick) - 1
	for {
		select {
		case <-e.drainCh:
			e.mu.Lock()
			e.janitorRunning = false
			e.mu.Unlock()
			return
		case now := <-tk.C:
			cur := now.UnixNano()/int64(e.opts.LeaseTick) - 1
			var expired []*Lease
			e.wheelMu.Lock()
			for t := last + 1; t <= cur; t++ {
				slot := int(t) & (wheelSlots - 1)
				for l := range e.wheel[slot] {
					if l.deadline > now.UnixNano() {
						// Lazily re-armed (or a future revolution's
						// tenant): move it to its deadline's bucket.
						ns := e.wheelSlot(l.deadline)
						if ns != slot {
							delete(e.wheel[slot], l)
							if e.wheel[ns] == nil {
								e.wheel[ns] = map[*Lease]struct{}{}
							}
							e.wheel[ns][l] = struct{}{}
							l.slot = ns
						}
						continue
					}
					expired = append(expired, l)
				}
			}
			last = cur
			e.wheelMu.Unlock()

			for _, l := range expired {
				// TryLock: a lease mid-step is busy, not idle — its
				// deadline refreshes when the step ends, and its bucket
				// comes round again next revolution.
				if l.mu.TryLock() {
					if !l.closed && l.deadline <= now.UnixNano() {
						l.closeLocked(true)
					}
					l.mu.Unlock()
				}
			}

			e.mu.Lock()
			if len(e.leases) == 0 {
				e.janitorRunning = false
				e.mu.Unlock()
				return
			}
			e.mu.Unlock()
		}
	}
}

// acquireSlot takes one build slot, waiting until ctx expires or a drain
// begins. Lease steps use it directly; it is the same semaphore Acquire
// fills, so session steps and one-shot builds share one budget.
func (e *Engine) acquireSlot(ctx context.Context) error {
	select {
	case e.slots <- struct{}{}:
		return nil
	default:
	}
	rq := reqtrace.FromContext(ctx)
	var qstart time.Time
	if rq != nil {
		qstart = time.Now()
	}
	select {
	case e.slots <- struct{}{}:
		rq.SpanSince("queue", qstart)
		return nil
	case <-e.drainCh:
		return ErrDraining
	case <-ctx.Done():
		return ctx.Err()
	}
}
