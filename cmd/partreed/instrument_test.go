package main

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	"partree/internal/reqtrace"
	"partree/internal/trace"
)

// flightEntry mirrors the /debug/requests/<id> document the e2e
// assertions need.
type flightEntry struct {
	ID          string           `json:"id"`
	Route       string           `json:"route"`
	Status      int              `json:"status"`
	Bytes       int64            `json:"bytes"`
	DurNs       int64            `json:"dur_ns"`
	QueueNs     int64            `json:"queue_ns"`
	BuildWallNs int64            `json:"build_wall_ns"`
	Phases      reqtrace.Phases  `json:"phases"`
	Spans       []reqtrace.Span  `json:"spans"`
	TracePhase  map[string]int64 `json:"trace_phase_ns"`
	Trace       *trace.Summary   `json:"trace"`
}

// fetchFlightEntry polls /debug/requests/<id> until the request's entry
// is published (Finish runs just after the handler's response, so the
// client can observe the response before the recorder does).
func fetchFlightEntry(t *testing.T, url, id string) flightEntry {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		resp, err := http.Get(url + "/debug/requests/" + id)
		if err != nil {
			t.Fatalf("GET /debug/requests/%s: %v", id, err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode == http.StatusOK {
			var e flightEntry
			if err := json.Unmarshal(body, &e); err != nil {
				t.Fatalf("parsing flight entry: %v\n%s", err, body)
			}
			return e
		}
		if time.Now().After(deadline) {
			t.Fatalf("request %s never appeared in the flight recorder (last: %d %s)",
				id, resp.StatusCode, body)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestBuildRequestObservability is the tentpole acceptance path: POST a
// build with a W3C traceparent, and the response's X-Request-Id keys
// the full request timeline out of /debug/requests — with the queue and
// build spans summing to within the recorded total, the phase breakdown
// within the build wall time, a Server-Timing header agreeing with the
// entry, and the partree_req_* families moved.
func TestBuildRequestObservability(t *testing.T) {
	d := startDaemon(t, daemonConfig{maxActive: 2, maxQueue: 8, drainTimeout: 10 * time.Second})
	url := d.srv.URL()
	const traceID = "4bf92f3577b34da6a3ce929d0e0e4736"

	buf, _ := json.Marshal(buildSpec(1777, 2))
	req, _ := http.NewRequest(http.MethodPost, url+"/v1/build", bytes.NewReader(buf))
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set("traceparent", "00-"+traceID+"-00f067aa0ba902b7-01")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("POST /v1/build: %v", err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("build: status %d\n%s", resp.StatusCode, body)
	}
	if got := resp.Header.Get("X-Request-Id"); got != traceID {
		t.Fatalf("X-Request-Id = %q, want the traceparent trace-id %q", got, traceID)
	}
	st := resp.Header.Get("Server-Timing")
	for _, station := range []string{"queue;dur=", "build;dur=", "moments;dur=", "total;dur="} {
		if !strings.Contains(st, station) {
			t.Errorf("Server-Timing %q missing %q", st, station)
		}
	}

	e := fetchFlightEntry(t, url, traceID)
	if e.ID != traceID || e.Route != "/v1/build" || e.Status != http.StatusOK {
		t.Fatalf("flight entry = %+v", e)
	}
	if e.Bytes != int64(len(body)) {
		t.Errorf("entry bytes = %d, want the %d-byte response", e.Bytes, len(body))
	}
	if e.DurNs <= 0 {
		t.Fatalf("entry dur_ns = %d", e.DurNs)
	}
	// The acceptance inequality: queue wait plus build wall time are
	// disjoint stations inside the request, so they sum to within the
	// recorded total.
	if e.QueueNs+e.BuildWallNs > e.DurNs {
		t.Errorf("queue(%d) + build(%d) spans exceed the recorded total %d ns",
			e.QueueNs, e.BuildWallNs, e.DurNs)
	}
	// The core phase breakdown nests inside the build wall spans (the
	// spec ran 2 in-process steps, all stamped onto this request).
	phases := e.Phases.BoundsNs + e.Phases.InsertNs + e.Phases.MomentsNs
	if phases <= 0 || phases > e.DurNs {
		t.Errorf("phase breakdown %d ns outside (0, dur=%d]", phases, e.DurNs)
	}
	var hasBuild bool
	for _, s := range e.Spans {
		if s.Name == "build" {
			hasBuild = true
		}
	}
	if !hasBuild {
		t.Errorf("entry spans %v carry no build wall span", e.Spans)
	}

	// The entry is also in the ring listing, and the metric families
	// observed it.
	code, _, page := httpGet(t, url+"/debug/requests")
	if code != http.StatusOK || !strings.Contains(string(page), traceID) {
		t.Errorf("/debug/requests (status %d) does not list %s", code, traceID)
	}
	code, _, page = httpGet(t, url+"/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics: status %d", code)
	}
	pg := string(page)
	if v := metricValue(t, pg, "partree_req_duration_seconds_count"); v < 1 {
		t.Errorf("partree_req_duration_seconds_count = %v, want >= 1", v)
	}
	if v := metricValue(t, pg, "partree_req_queue_wait_seconds_count"); v < 1 {
		t.Errorf("partree_req_queue_wait_seconds_count = %v, want >= 1", v)
	}
	if v := metricValue(t, pg, "partree_req_in_flight"); v != 0 {
		t.Errorf("partree_req_in_flight = %v at idle, want 0", v)
	}
	if !strings.Contains(pg, `partree_req_duration_max_seconds{request_id="`) {
		t.Errorf("/metrics carries no request-ID exemplar series")
	}
}

func httpGet(t *testing.T, url string) (int, string, []byte) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	return resp.StatusCode, resp.Header.Get("Content-Type"), body
}

// TestRequestIDMintedAndInErrors pins the no-traceparent path (the
// daemon mints a well-formed ID) and the error contract (the JSON error
// document names the request ID the header assigned).
func TestRequestIDMintedAndInErrors(t *testing.T) {
	d := startDaemon(t, daemonConfig{maxActive: 1, maxQueue: 4, drainTimeout: 10 * time.Second})
	url := d.srv.URL()

	resp := postJSON(t, url+"/v1/build", buildSpec(1024, 1))
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	minted := resp.Header.Get("X-Request-Id")
	if _, ok := reqtrace.ParseTraceparent("00-" + minted + "-00f067aa0ba902b7-01"); !ok {
		t.Fatalf("minted X-Request-Id %q is not a valid trace-id", minted)
	}

	// A method error still carries the ID in header and body.
	resp, err := http.Get(url + "/v1/build")
	if err != nil {
		t.Fatalf("GET /v1/build: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET /v1/build: status %d, want 405", resp.StatusCode)
	}
	var doc map[string]string
	if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
		t.Fatalf("decoding error document: %v", err)
	}
	id := resp.Header.Get("X-Request-Id")
	if doc["request_id"] == "" || doc["request_id"] != id {
		t.Errorf("error document request_id = %q, header = %q; want them equal and set", doc["request_id"], id)
	}
	if doc["error"] == "" {
		t.Errorf("error document lost its message: %v", doc)
	}
}

// TestSessionRequestObservability runs an adaptive streaming session
// and checks the in-stream per-step timing records, then the whole
// stream's single flight-recorder entry — including the bridged
// internal/trace summary, whose per-phase totals must agree with the
// rendered trace_phase_ns map and nest inside the recorded total.
func TestSessionRequestObservability(t *testing.T) {
	d := startDaemon(t, daemonConfig{maxActive: 2, maxQueue: 8, drainTimeout: 10 * time.Second})
	url := d.srv.URL()
	const traceID = "00f067aa0ba902b74bf92f3577b34da6"
	const procs, steps = 2, 3

	pr, pw := io.Pipe()
	req, _ := http.NewRequest(http.MethodPost, url+"/v1/session", pr)
	req.Header.Set("Content-Type", "application/x-ndjson")
	req.Header.Set("traceparent", "00-"+traceID+"-00f067aa0ba902b7-01")
	enc := json.NewEncoder(pw)
	go enc.Encode(sessionOpen{Procs: procs, Bodies: 1500, Seed: 11, Adaptive: true})
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("POST /v1/session: %v", err)
	}
	defer resp.Body.Close()
	defer pw.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("session: status %d", resp.StatusCode)
	}
	if got := resp.Header.Get("X-Request-Id"); got != traceID {
		t.Fatalf("X-Request-Id = %q, want %q", got, traceID)
	}

	dec := json.NewDecoder(resp.Body)
	var rec sessionRecord
	if err := dec.Decode(&rec); err != nil || rec.Event != "opened" {
		t.Fatalf("first record = %+v (%v), want opened", rec, err)
	}
	for i := 0; i < steps; i++ {
		if err := enc.Encode(sessionStep{Drift: i > 0}); err != nil {
			t.Fatalf("sending step %d: %v", i, err)
		}
		if err := dec.Decode(&rec); err != nil || rec.Event != "step" {
			t.Fatalf("step %d record = %+v (%v)", i, rec, err)
		}
		// Every step record carries the in-stream breakdown — the NDJSON
		// equivalent of /v1/build's Server-Timing header.
		if rec.Timing == nil {
			t.Fatalf("step %d carries no timing record", i)
		}
		if rec.Timing.TotalMs <= 0 || rec.Timing.BuildMs <= 0 {
			t.Errorf("step %d timing = %+v, want positive build and total", i, rec.Timing)
		}
		if rec.Timing.BuildMs+rec.Timing.MomentsMs > rec.Timing.TotalMs+1 {
			t.Errorf("step %d: build(%g)+moments(%g) ms exceed total %g ms", i,
				rec.Timing.BuildMs, rec.Timing.MomentsMs, rec.Timing.TotalMs)
		}
	}
	enc.Encode(sessionStep{Close: true})
	if err := dec.Decode(&rec); err != nil || rec.Event != "closed" || rec.Steps != steps {
		t.Fatalf("close record = %+v (%v)", rec, err)
	}
	pw.Close()

	e := fetchFlightEntry(t, url, traceID)
	if e.Route != "/v1/session" || e.Status != http.StatusOK {
		t.Fatalf("flight entry = %+v", e)
	}
	if e.QueueNs+e.BuildWallNs > e.DurNs {
		t.Errorf("queue(%d) + build(%d) exceed total %d ns", e.QueueNs, e.BuildWallNs, e.DurNs)
	}
	var builds int
	for _, s := range e.Spans {
		if s.Name == "build" {
			builds++
		}
	}
	if builds != steps {
		t.Errorf("%d build spans recorded, want one per step (%d)", builds, steps)
	}
	if e.Phases.BoundsNs+e.Phases.InsertNs <= 0 {
		t.Errorf("session entry accumulated no build phases: %+v", e.Phases)
	}

	// The adaptive session traces every step; the last step's summary is
	// bridged verbatim, and the rendered trace_phase_ns must agree with
	// it exactly.
	if e.Trace == nil || len(e.Trace.PerProc) != procs {
		t.Fatalf("bridged trace = %+v, want a %d-processor summary", e.Trace, procs)
	}
	totals := e.Trace.PhaseTotals()
	if len(e.TracePhase) != trace.NumPhases {
		t.Fatalf("trace_phase_ns has %d phases, want %d: %v", len(e.TracePhase), trace.NumPhases, e.TracePhase)
	}
	var traced int64
	for i, ns := range totals {
		name := trace.Phase(i).String()
		if got, ok := e.TracePhase[name]; !ok || got != ns {
			t.Errorf("trace_phase_ns[%s] = %d, want the summary's %d", name, got, ns)
		}
		traced += ns
	}
	if traced <= 0 {
		t.Error("bridged per-processor summary recorded no phase time")
	}
}

// TestFlightRecorderDisabled runs the daemon with request tracing off
// (-flight < 0): requests still get an ID for the access log, but no
// Server-Timing, no /debug/requests routes, no partree_req_* families —
// and the serving path still works.
func TestFlightRecorderDisabled(t *testing.T) {
	d := startDaemon(t, daemonConfig{maxActive: 1, maxQueue: 4, flight: -1, drainTimeout: 10 * time.Second})
	url := d.srv.URL()
	resp := postJSON(t, url+"/v1/build", buildSpec(1024, 1))
	res := decodeResult(t, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || res.Failed() {
		t.Fatalf("disabled-mode build: status %d, failed %v", resp.StatusCode, res.Failed())
	}
	if id := resp.Header.Get("X-Request-Id"); len(id) != 32 {
		t.Errorf("X-Request-Id = %q; the access log still needs an ID with tracing off", id)
	}
	if st := resp.Header.Get("Server-Timing"); st != "" {
		t.Errorf("disabled daemon still answers Server-Timing %q", st)
	}
	code, _, _ := httpGet(t, url+"/debug/requests")
	if code != http.StatusNotFound {
		t.Errorf("/debug/requests on a disabled daemon: status %d, want 404", code)
	}
	code, _, page := httpGet(t, url+"/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics: %d", code)
	}
	if strings.Contains(string(page), "partree_req_") {
		t.Errorf("disabled daemon still exports partree_req_* families")
	}
}
