package engine

import (
	"fmt"

	"partree/internal/partition"
	"partree/internal/vec"
)

// Guard is the admission boundary a sharded engine places in front of
// body state: a shard owns the half-open Morton key range [Lo, Hi) of a
// shared domain cube, and every body whose position keys outside that
// range must be refused with a typed *RedirectError instead of being
// absorbed. The router uses the error's key to find the body's rightful
// owner, so a body crossing a shard boundary between steps is handed
// off consistently — it leaves the source shard and enters exactly one
// destination, never both and never neither.
//
// The zero Guard owns nothing; a single-shard deployment uses
// [0, partition.KeySpace) and never redirects.
type Guard struct {
	Domain vec.Cube // the cluster-wide domain every shard keys against
	Lo, Hi uint64   // owned key range, half-open [Lo, Hi)
}

// Key returns the Morton key of a position under the guard's domain.
// All shards of one map share the domain cube, so a key computed on any
// shard names the same spatial cell on every other.
func (g Guard) Key(p vec.V3) uint64 {
	return partition.MortonKey(g.Domain, p)
}

// Owns reports whether a key falls inside the guard's range.
func (g Guard) Owns(key uint64) bool {
	return key >= g.Lo && key < g.Hi
}

// Check admits a body position or rejects it with a *RedirectError
// carrying the body id and its Morton key. A nil error means the body
// belongs here.
func (g Guard) Check(body int32, p vec.V3) error {
	if key := g.Key(p); !g.Owns(key) {
		return &RedirectError{Body: body, Key: key, Lo: g.Lo, Hi: g.Hi}
	}
	return nil
}

// RedirectError reports a body whose position keys outside the shard's
// owned range. It is the handoff currency between a shard and the
// router: the shard refuses (or evicts) the body and returns this error,
// and the router resolves Key against the shard map to deliver the body
// to its owner. Callers match it with errors.As.
type RedirectError struct {
	Body   int32  // body id that missed the range
	Key    uint64 // the body's Morton key under the shared domain
	Lo, Hi uint64 // the range that refused it
}

func (e *RedirectError) Error() string {
	return fmt.Sprintf("engine: body %d key %#x outside shard range [%#x, %#x)",
		e.Body, e.Key, e.Lo, e.Hi)
}
