package core

import (
	"time"

	"partree/internal/octree"
	"partree/internal/phys"
	"partree/internal/trace"
)

// loadBuilder is the shared skeleton of ORIG and LOCAL: every processor
// loads its own bodies one by one into a single shared tree, locking cells
// as it modifies them. The two algorithms differ only in their allocation
// layout, captured by arenaFor.
type loadBuilder struct {
	cfg   Config
	alg   Algorithm
	store *octree.Store
	// arenaFor maps a processor to the arena it allocates nodes from:
	// ORIG returns 0 for everyone (the single shared global array with a
	// shared allocation cursor); LOCAL returns the processor's own arena
	// (per-processor cell and leaf arrays).
	arenaFor func(proc int) int
}

func newOrig(cfg Config) Builder {
	return &loadBuilder{
		cfg:      cfg,
		alg:      ORIG,
		store:    octree.NewStore(1, cfg.LeafCap),
		arenaFor: func(int) int { return 0 },
	}
}

func newLocal(cfg Config) Builder {
	return &loadBuilder{
		cfg:      cfg,
		alg:      LOCAL,
		store:    octree.NewStore(cfg.P, cfg.LeafCap),
		arenaFor: func(proc int) int { return proc },
	}
}

func (lb *loadBuilder) Algorithm() Algorithm { return lb.alg }

func (lb *loadBuilder) Build(in *Input) (*octree.Tree, *Metrics) {
	m := newMetrics(lb.alg, in.P())
	tree := buildShared(lb.store, in, lb.cfg, m, lb.arenaFor, nil)
	return tree, m
}

// buildShared runs the concurrent-load build: size the root, load all
// bodies with locking, compute moments in parallel. UPDATE reuses it for
// its first step with a bodyLeaf map to maintain.
func buildShared(store *octree.Store, in *Input, cfg Config, m *Metrics,
	arenaFor func(int) int, bodyLeaf []uint32) *octree.Tree {

	p := in.P()
	tr := cfg.traceStart()
	t0 := time.Now()
	cube := parallelBounds(in, cfg.Margin, tr)
	store.Reset()
	tree := octree.NewTree(store, arenaFor(0), 0, cube)
	t1 := time.Now()

	pos := in.Bodies.Pos
	tracedDo(tr, trace.PhaseInsert, p, func(w int) {
		ins := &inserter{
			s:        store,
			arena:    arenaFor(w),
			proc:     w,
			pc:       &m.PerP[w],
			bodyLeaf: bodyLeaf,
			tp:       tr.Proc(w),
		}
		for _, b := range in.Assign[w] {
			ins.insert(tree.Root, 0, b, pos)
		}
		m.PerP[w].BodiesBuilt += int64(len(in.Assign[w]))
	})
	t2 := time.Now()

	mt := traceNow(tr)
	octree.ComputeMomentsParallel(tree, bodyData(in.Bodies), p)
	spanAll(tr, trace.PhaseMoments, mt, p)
	t3 := time.Now()

	m.Timing.Bounds += t1.Sub(t0)
	m.Timing.Insert += t2.Sub(t1)
	m.Timing.Moments += t3.Sub(t2)
	if tr != nil {
		m.Trace = tr.Summarize()
	}
	return tree
}

func bodyData(b *phys.Bodies) octree.BodyData {
	return octree.BodyData{Pos: b.Pos, Mass: b.Mass, Cost: b.Cost}
}
