package reqtrace_test

import (
	"bytes"
	"flag"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"partree/internal/obs"
	"partree/internal/reqtrace"
	"partree/internal/trace"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files")

func checkGolden(t *testing.T, name string, got []byte) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (run with -update to create it)", err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("output diverged from golden file %s.\ngot:\n%s\nwant:\n%s", path, got, want)
	}
}

// goldenRecorder replays a fixed three-request history through the
// deterministic constructors: a plain build, a traced session past the
// slow threshold (with a bridged per-processor summary), and an
// admission rejection. Every timestamp derives from epoch, so renders
// are byte-stable.
func goldenRecorder() *reqtrace.Recorder {
	rec := reqtrace.NewRecorder(reqtrace.Options{Cap: 4, SlowThreshold: 250 * time.Millisecond, SlowK: 2})
	ms := func(base time.Time, n int) time.Time { return base.Add(time.Duration(n) * time.Millisecond) }

	b := rec.StartAt("4bf92f3577b34da6a3ce929d0e0e4736", "/v1/build", epoch)
	b.SpanAt("read", ms(epoch, 0), ms(epoch, 1))
	b.SpanAt("queue", ms(epoch, 1), ms(epoch, 3))
	b.SpanAt("build", ms(epoch, 3), ms(epoch, 13))
	b.SpanAt("write", ms(epoch, 13), ms(epoch, 14))
	b.AddBuildPhases(6*time.Millisecond, 3*time.Millisecond, time.Millisecond)
	b.FinishAt(200, 4096, ms(epoch, 14))

	s0 := epoch.Add(time.Second)
	s := rec.StartAt("00f067aa0ba902b74bf92f3577b34da6", "/v1/session", s0)
	for i := 0; i < 2; i++ {
		s.SpanAt("queue", ms(s0, 100*i), ms(s0, 100*i+20))
		s.SpanAt("build", ms(s0, 100*i+20), ms(s0, 100*i+90))
		s.AddBuildPhases(40*time.Millisecond, 25*time.Millisecond, 5*time.Millisecond)
	}
	s.BridgeTrace(&trace.Summary{PerProc: []trace.ProcSummary{
		{PhaseNs: [trace.NumPhases]int64{10e6, 30e6, 4e6, 5e6, 1e6}, Spans: 4,
			LockEvents: 12, LockWaitNs: 2e6, LockHoldNs: 1e6, HoldP50Ns: 80000, HoldP95Ns: 90000, HoldMaxNs: 95000},
		{PhaseNs: [trace.NumPhases]int64{10e6, 35e6, 3e6, 5e6, 2e6}, Spans: 4,
			LockEvents: 14, LockWaitNs: 3e6, LockHoldNs: 1e6, HoldP50Ns: 70000, HoldP95Ns: 85000, HoldMaxNs: 92000},
	}})
	s.FinishAt(200, 2048, ms(s0, 300))

	r := rec.StartAt("0af7651916cd43dd8448eb211c80319c", "/v1/build", epoch.Add(2*time.Second))
	r.FinishAt(503, 58, epoch.Add(2*time.Second+500*time.Microsecond))
	return rec
}

func get(t *testing.T, url string) (int, string, []byte) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, resp.Header.Get("Content-Type"), body
}

// TestDebugEndpointsGolden serves the golden recorder over a real
// listener (httptest binds 127.0.0.1:0) and pins all three endpoints'
// rendered bytes: the ring (newest first), the slow list, and a by-ID
// lookup including the bridged trace summary.
func TestDebugEndpointsGolden(t *testing.T) {
	rec := goldenRecorder()
	mux := http.NewServeMux()
	rec.Mount(mux)
	srv := httptest.NewServer(mux)
	defer srv.Close()

	cases := []struct {
		path, golden string
	}{
		{"/debug/requests", "requests.golden"},
		{"/debug/requests/slow", "slow.golden"},
		{"/debug/requests/00f067aa0ba902b74bf92f3577b34da6", "byid.golden"},
	}
	for _, c := range cases {
		code, ct, body := get(t, srv.URL+c.path)
		if code != http.StatusOK {
			t.Fatalf("GET %s: status %d\n%s", c.path, code, body)
		}
		if ct != "application/json" {
			t.Errorf("GET %s: content-type %q", c.path, ct)
		}
		checkGolden(t, c.golden, body)
	}

	// Unknown and malformed IDs answer JSON 404s.
	for _, path := range []string{
		"/debug/requests/ffffffffffffffffffffffffffffffff",
		"/debug/requests/a/b",
	} {
		code, _, body := get(t, srv.URL+path)
		if code != http.StatusNotFound {
			t.Errorf("GET %s: status %d, want 404", path, code)
		}
		if !strings.Contains(string(body), `"error"`) {
			t.Errorf("GET %s: 404 carried no JSON error document: %s", path, body)
		}
	}
}

// TestMountNilRecorder pins that a disabled daemon simply has no
// /debug/requests routes rather than panicking at mount time.
func TestMountNilRecorder(t *testing.T) {
	var rec *reqtrace.Recorder
	mux := http.NewServeMux()
	rec.Mount(mux)
	req := httptest.NewRequest(http.MethodGet, "/debug/requests", nil)
	w := httptest.NewRecorder()
	mux.ServeHTTP(w, req)
	if w.Code != http.StatusNotFound {
		t.Fatalf("disabled daemon answered /debug/requests with %d, want 404", w.Code)
	}
}

// TestExpositionGolden pins the partree_req_* metric families'
// Prometheus rendering: both histograms, the in-flight gauge, the slow
// counter, and the per-route max exemplar with its request_id label.
func TestExpositionGolden(t *testing.T) {
	rec := goldenRecorder()
	reg := obs.NewRegistry()
	if err := rec.RegisterObs(reg); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	page := buf.String()
	for _, want := range []string{
		`partree_req_duration_seconds_count{route="/v1/build"} 2`,
		`partree_req_duration_seconds_count{route="/v1/session"} 1`,
		"partree_req_queue_wait_seconds_count 3",
		"partree_req_in_flight 0",
		"partree_req_slow_total 1",
		`partree_req_duration_max_seconds{request_id="4bf92f3577b34da6a3ce929d0e0e4736",route="/v1/build"} 0.014`,
		`partree_req_duration_max_seconds{request_id="00f067aa0ba902b74bf92f3577b34da6",route="/v1/session"} 0.3`,
	} {
		if !strings.Contains(page, want) {
			t.Errorf("exposition missing %q", want)
		}
	}
	checkGolden(t, "metrics.golden", buf.Bytes())
}
