#!/bin/sh
# obs_smoke.sh — smoke-test the live observability layer end to end:
# launch treebench with -http, wait for the server to come up, assert
# /healthz reports ok and /metrics exposes the key series, then let the
# sweep finish and check it exited cleanly. Then launch partreed, drive
# one streaming session through /v1/session, assert the session metric
# families, and check SIGTERM drains cleanly. Run via `make obs-smoke`
# (part of `make check`).
set -e

GO=${GO:-go}
tmp=$(mktemp -d)
bin="$tmp/treebench"
log="$tmp/treebench.log"
metrics="$tmp/metrics.txt"
pid=
pid2=
cleanup() {
    [ -n "$pid" ] && kill "$pid" 2>/dev/null
    [ -n "$pid2" ] && kill "$pid2" 2>/dev/null
    rm -rf "$tmp"
}
trap cleanup EXIT INT TERM

$GO build -o "$bin" ./cmd/treebench

# :0 picks a free port; the resolved URL is read from the serving log
# line, so parallel CI jobs never collide.
"$bin" -n 100000 -p 1,2,4 -reps 3 -http 127.0.0.1:0 -v info >/dev/null 2>"$log" &
pid=$!

url=
i=0
while [ $i -lt 100 ]; do
    url=$(sed -n 's/.*msg="obs: serving".* url=\(http:[^ ]*\).*/\1/p' "$log" | head -1)
    [ -n "$url" ] && break
    if ! kill -0 "$pid" 2>/dev/null; then
        echo "obs-smoke: treebench exited before serving" >&2
        cat "$log" >&2
        exit 1
    fi
    sleep 0.1
    i=$((i + 1))
done
if [ -z "$url" ]; then
    echo "obs-smoke: no serving address in log" >&2
    cat "$log" >&2
    exit 1
fi

curl -fsS "$url/healthz" | grep -q '"status": "ok"' || {
    echo "obs-smoke: /healthz did not report ok" >&2
    exit 1
}

# The duration histogram only grows series once a spec completes, so
# keep scraping until every expected series shows up (or the sweep
# finishes without them, which is a failure).
series_list="
partree_runner_specs_started_total
partree_runner_cache_misses_total
partree_runner_in_flight
partree_runner_queue_depth
partree_runner_spec_duration_seconds_bucket
partree_runner_body_memo_misses_total
partree_build_total
partree_build_locks_total
go_goroutines
go_mem_heap_alloc_bytes
go_gc_pause_seconds_total
"
i=0
while :; do
    curl -fsS "$url/metrics" >"$metrics"
    missing=
    for series in $series_list; do
        grep -q "^$series" "$metrics" || missing="$missing $series"
    done
    [ -z "$missing" ] && break
    i=$((i + 1))
    if [ $i -ge 120 ] || ! kill -0 "$pid" 2>/dev/null; then
        echo "obs-smoke: /metrics is missing series:$missing" >&2
        exit 1
    fi
    sleep 0.5
done

wait "$pid" || {
    echo "obs-smoke: treebench exited non-zero" >&2
    cat "$log" >&2
    exit 1
}
pid=
echo "obs-smoke: treebench ok ($url, $(wc -l <"$metrics") metric lines)"

# --- partreed: streaming session + drain ------------------------------
dbin="$tmp/partreed"
dlog="$tmp/partreed.log"
stream="$tmp/session.ndjson"
$GO build -o "$dbin" ./cmd/partreed

"$dbin" -addr 127.0.0.1:0 -v info 2>"$dlog" &
pid2=$!

durl=
i=0
while [ $i -lt 100 ]; do
    durl=$(sed -n 's/.*msg=serving .* url=\(http:[^ ]*\).*/\1/p' "$dlog" | head -1)
    [ -n "$durl" ] && break
    if ! kill -0 "$pid2" 2>/dev/null; then
        echo "obs-smoke: partreed exited before serving" >&2
        cat "$dlog" >&2
        exit 1
    fi
    sleep 0.1
    i=$((i + 1))
done
if [ -z "$durl" ]; then
    echo "obs-smoke: no partreed serving address in log" >&2
    cat "$dlog" >&2
    exit 1
fi

# One short adaptive session: open, three drift steps, close. The
# histogram only renders buckets once a step is observed, so this run is
# what makes the partree_session_* families assertable below — and
# because it opts into adaptive partitioning, it also advances the
# partree_adapt_* feedback-loop counters past zero.
curl -fsS --no-buffer "$durl/v1/session" --data-binary @- >"$stream" <<'EOF'
{"procs": 2, "bodies": 4096, "model": "plummer", "adaptive": true}
{"drift": true}
{"drift": true}
{"drift": true}
{"close": true}
EOF
grep -q '"event":"step"' "$stream" || {
    echo "obs-smoke: session stream has no step records" >&2
    cat "$stream" >&2
    exit 1
}
grep -q '"event":"closed"' "$stream" || {
    echo "obs-smoke: session stream was not acknowledged closed" >&2
    cat "$stream" >&2
    exit 1
}

# --- request flight recorder ------------------------------------------
# One traced build: send a W3C traceparent, expect the response to echo
# its trace-id as X-Request-Id plus a Server-Timing breakdown, and the
# full request timeline to be retrievable from /debug/requests by that
# ID.
hdrs="$tmp/build-headers.txt"
entry="$tmp/flight-entry.json"
want_rid="4bf92f3577b34da6a3ce929d0e0e4736"
curl -fsS -D "$hdrs" -H "traceparent: 00-$want_rid-00f067aa0ba902b7-01" \
    "$durl/v1/build" --data-binary \
    '{"backend":"native","algorithm":"SPACE","procs":2,"bodies":4096,"steps":1,"build_only":true,"seed":7}' \
    >/dev/null

rid=$(tr -d '\r' <"$hdrs" | sed -n 's/^[Xx]-[Rr]equest-[Ii]d: *//p' | head -1)
[ "$rid" = "$want_rid" ] || {
    echo "obs-smoke: X-Request-Id '$rid', want the traceparent trace-id $want_rid" >&2
    cat "$hdrs" >&2
    exit 1
}
grep -qi '^server-timing: .*queue;dur=.*build;dur=.*moments;dur=.*total;dur=' "$hdrs" || {
    echo "obs-smoke: /v1/build answered no Server-Timing breakdown" >&2
    cat "$hdrs" >&2
    exit 1
}

# The flight-recorder entry publishes right after the response; retry
# briefly rather than race it.
i=0
while ! curl -fsS "$durl/debug/requests/$rid" >"$entry" 2>/dev/null; do
    i=$((i + 1))
    [ $i -ge 50 ] && {
        echo "obs-smoke: request $rid never appeared in /debug/requests" >&2
        exit 1
    }
    sleep 0.1
done
grep -q '"route": "/v1/build"' "$entry" || {
    echo "obs-smoke: flight entry has the wrong route" >&2
    cat "$entry" >&2
    exit 1
}
grep -q '"name": "build"' "$entry" || {
    echo "obs-smoke: flight entry recorded no build span" >&2
    cat "$entry" >&2
    exit 1
}
curl -fsS "$durl/debug/requests" | grep -q "$rid" || {
    echo "obs-smoke: /debug/requests ring does not list $rid" >&2
    exit 1
}
curl -fsS "$durl/debug/requests/slow" | grep -q '"capacity"' || {
    echo "obs-smoke: /debug/requests/slow did not render" >&2
    exit 1
}

curl -fsS "$durl/metrics" >"$metrics"
missing=
for series in \
    partree_req_duration_seconds_bucket \
    partree_req_queue_wait_seconds_bucket \
    partree_req_in_flight \
    partree_req_slow_total \
    partree_req_duration_max_seconds \
    partree_session_opened_total \
    partree_session_closed_total \
    partree_session_evicted_total \
    partree_session_rejected_total \
    partree_session_fallbacks_total \
    partree_session_unplanned_rebuilds_total \
    partree_session_active \
    partree_session_max_leases \
    partree_session_step_seconds_bucket \
    partree_adapt_sessions_total \
    partree_adapt_corrections_total \
    partree_adapt_knob_changes_total \
    partree_adapt_repartitions_total \
    partree_adapt_skew_before \
    partree_adapt_skew_after \
    partree_adapt_leafcap \
    partree_adapt_space_threshold \
    partree_adapt_effective_p \
; do
    grep -q "^$series" "$metrics" || missing="$missing $series"
done
[ -n "$missing" ] && {
    echo "obs-smoke: partreed /metrics is missing series:$missing" >&2
    exit 1
}

# The adaptive session ran real steps, so the feedback loop must have
# actually turned: a controller constructed and at least one
# measured-cost recut served (not just zero-valued families present).
for series in partree_adapt_sessions_total partree_adapt_repartitions_total; do
    v=$(awk -v s="$series" '$1 == s { print $2 }' "$metrics")
    case $v in
    '' | 0 | 0.0)
        echo "obs-smoke: $series = '$v', want > 0 after an adaptive session" >&2
        exit 1
        ;;
    esac
done

# SIGTERM must drain: in-flight work finishes, the process exits 0.
kill -TERM "$pid2"
wait "$pid2" || {
    echo "obs-smoke: partreed did not drain cleanly on SIGTERM" >&2
    cat "$dlog" >&2
    exit 1
}
pid2=
echo "obs-smoke: ok ($durl, session metrics present, drain clean)"
