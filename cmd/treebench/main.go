// Command treebench benchmarks the five native tree builders on this
// machine: wall-clock per build, lock counts, and tree statistics across
// algorithms and processor counts. Each (algorithm, procs) cell is a
// build-only spec executed through the shared internal/runner engine
// (serially, so wall-clock timings stay honest).
//
// Usage:
//
//	treebench [-alg all] [-n 65536] [-p 1,2,4,8] [-reps 5] [-leafcap 8]
//	          [-model plummer] [-timeout 0] [-check] [-trace out.json]
//	          [-benchout BENCH_treebuild.json] [-json]
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"partree/internal/core"
	"partree/internal/runner"
	"partree/internal/stats"
)

// benchFile is the machine-readable regression baseline -benchout emits
// (committed as BENCH_treebuild.json; `make bench` regenerates it).
type benchFile struct {
	Bodies  int         `json:"bodies"`
	LeafCap int         `json:"leafcap"`
	Reps    int         `json:"reps"`
	Spatial bool        `json:"spatial"`
	Cells   []benchCell `json:"cells"`
}

type benchCell struct {
	Alg        string `json:"alg"`
	P          int    `json:"p"`
	NsPerBuild int64  `json:"ns_per_build"`
	Locks      int64  `json:"locks"`
}

// traceName derives a per-cell trace filename from the -trace argument
// when the sweep has more than one cell (base.json -> base_ORIG_p4.json).
func traceName(base string, alg core.Algorithm, p int) string {
	ext := ".json"
	stem := base
	if i := strings.LastIndex(base, "."); i > 0 {
		stem, ext = base[:i], base[i:]
	}
	return fmt.Sprintf("%s_%s_p%d%s", stem, alg, p, ext)
}

func main() {
	sf := runner.RegisterSpecFlags(flag.CommandLine, runner.Spec{
		Backend:   runner.Native,
		Bodies:    65536,
		Seed:      1,
		BuildOnly: true,
	}, "alg", "p", "steps", "theta", "dt")
	var (
		algFlag  = flag.String("alg", "", "restrict the sweep to one tree builder: "+strings.Join(core.AlgorithmNames(), ", ")+" (default all)")
		procs    = flag.String("p", "1,2,4,8", "comma-separated processor counts")
		reps     = flag.Int("reps", 5, "builds per configuration (best time reported)")
		spatial  = flag.Bool("spatial", true, "spatially coherent body partition (like settled costzones)")
		benchout = flag.String("benchout", "", "write a machine-readable ns-per-build baseline to this JSON file")
	)
	flag.Parse()

	base, err := sf.Spec()
	if err != nil {
		fmt.Fprintf(os.Stderr, "treebench: %v\n", err)
		os.Exit(2)
	}
	base.BuildOnly = true
	base.Steps = *reps
	base.Spatial = *spatial

	algs := core.Algorithms()
	if *algFlag != "" {
		a, err := core.ParseAlgorithm(*algFlag)
		if err != nil {
			fmt.Fprintf(os.Stderr, "treebench: %v\n", err)
			os.Exit(2)
		}
		algs = []core.Algorithm{a}
	}

	var ps []int
	for _, f := range strings.Split(*procs, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil || v < 1 {
			fmt.Fprintf(os.Stderr, "treebench: bad processor count %q\n", f)
			os.Exit(2)
		}
		ps = append(ps, v)
	}

	var specs []runner.Spec
	for _, alg := range algs {
		for _, p := range ps {
			spec := base
			spec.Alg = alg
			spec.Procs = p
			if spec.Trace != "" && (len(algs) > 1 || len(ps) > 1) {
				// One file per sweep cell, so cells don't overwrite each
				// other's traces.
				spec.Trace = traceName(base.Trace, alg, p)
			}
			specs = append(specs, spec)
		}
	}

	// One worker: concurrent wall-clock benchmarks would contend for the
	// same cores and corrupt each other's timings.
	results := runner.New(1).RunAll(context.Background(), specs)

	if *benchout != "" {
		bf := benchFile{Bodies: base.Bodies, LeafCap: base.LeafCap, Reps: base.Steps, Spatial: base.Spatial}
		for _, r := range results {
			if r.Failed() {
				fmt.Fprintf(os.Stderr, "treebench: %s\n", r.FailureMessage())
				os.Exit(1)
			}
			bf.Cells = append(bf.Cells, benchCell{
				Alg: r.Spec.Alg.String(), P: r.Spec.Procs,
				NsPerBuild: int64(r.TreeNs), Locks: r.LocksTotal,
			})
		}
		buf, err := json.MarshalIndent(bf, "", "  ")
		if err != nil {
			fmt.Fprintf(os.Stderr, "treebench: %v\n", err)
			os.Exit(1)
		}
		if err := os.WriteFile(*benchout, append(buf, '\n'), 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "treebench: %v\n", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "treebench: wrote %s\n", *benchout)
	}

	if sf.JSON() {
		if err := runner.WriteJSON(os.Stdout, results...); err != nil {
			fmt.Fprintf(os.Stderr, "treebench: %v\n", err)
			os.Exit(1)
		}
		for _, r := range results {
			if r.Failed() {
				os.Exit(1)
			}
		}
		return
	}

	fmt.Printf("treebench: %d bodies (%s), k=%d, best of %d builds\n\n",
		base.Bodies, base.Model, base.LeafCap, base.Steps)

	header := []string{"algorithm"}
	for _, p := range ps {
		header = append(header, fmt.Sprintf("%dp", p))
	}
	header = append(header, "locks(8p)", "tree")
	t := stats.NewTable(header...)

	i := 0
	for _, alg := range algs {
		row := []any{alg.String()}
		var locks int64
		var treeDesc string
		for pi, p := range ps {
			res := results[i]
			i++
			if res.Failed() {
				fmt.Fprintf(os.Stderr, "treebench: %s\n", res.FailureMessage())
				row = append(row, "-")
				continue
			}
			if p == 8 || (pi == len(ps)-1 && locks == 0) {
				locks = res.LocksTotal
				treeDesc = fmt.Sprintf("%dc/%dl d%d", res.Cells, res.Leaves, res.MaxDepth)
			}
			row = append(row, time.Duration(res.TreeNs).Round(10*time.Microsecond).String())
		}
		row = append(row, locks, treeDesc)
		t.Row(row...)
	}
	t.Write(os.Stdout)
}
