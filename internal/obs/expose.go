package obs

import (
	"bufio"
	"io"
	"strings"
)

// WritePrometheus renders every registered family in the Prometheus text
// exposition format (version 0.0.4): # HELP and # TYPE lines followed by
// one sample line per series, histograms expanded into cumulative
// _bucket/_sum/_count samples. Families are sorted by name and series by
// label values, so the output is byte-deterministic for a given state.
func (r *Registry) WritePrometheus(w io.Writer) error {
	bw := bufio.NewWriter(w)
	for _, fam := range r.Gather() {
		if fam.Help != "" {
			bw.WriteString("# HELP ")
			bw.WriteString(fam.Name)
			bw.WriteByte(' ')
			bw.WriteString(escapeHelp(fam.Help))
			bw.WriteByte('\n')
		}
		bw.WriteString("# TYPE ")
		bw.WriteString(fam.Name)
		bw.WriteByte(' ')
		bw.WriteString(string(fam.Type))
		bw.WriteByte('\n')
		for _, s := range fam.Series {
			if fam.Type == TypeHistogram && s.Hist != nil {
				writeHistogram(bw, fam.Name, s)
				continue
			}
			writeSample(bw, fam.Name, s.Labels, "", "", formatValue(s.Value))
		}
	}
	return bw.Flush()
}

// writeHistogram expands one histogram series into its exposition lines.
func writeHistogram(bw *bufio.Writer, name string, s Series) {
	h := s.Hist
	for i, ub := range h.UpperBounds {
		writeSample(bw, name+"_bucket", s.Labels, "le", formatValue(ub),
			formatValue(float64(h.Counts[i])))
	}
	writeSample(bw, name+"_bucket", s.Labels, "le", "+Inf", formatValue(float64(h.Count)))
	writeSample(bw, name+"_sum", s.Labels, "", "", formatValue(h.Sum))
	writeSample(bw, name+"_count", s.Labels, "", "", formatValue(float64(h.Count)))
}

// writeSample emits one line: name{labels,extra} value. extraName, when
// non-empty, appends one more label (the histogram "le").
func writeSample(bw *bufio.Writer, name string, labels []Label, extraName, extraVal, value string) {
	bw.WriteString(name)
	if len(labels) > 0 || extraName != "" {
		bw.WriteByte('{')
		first := true
		for _, l := range labels {
			if !first {
				bw.WriteByte(',')
			}
			first = false
			bw.WriteString(l.Name)
			bw.WriteString(`="`)
			bw.WriteString(escapeLabelValue(l.Value))
			bw.WriteByte('"')
		}
		if extraName != "" {
			if !first {
				bw.WriteByte(',')
			}
			bw.WriteString(extraName)
			bw.WriteString(`="`)
			bw.WriteString(escapeLabelValue(extraVal))
			bw.WriteByte('"')
		}
		bw.WriteByte('}')
	}
	bw.WriteByte(' ')
	bw.WriteString(value)
	bw.WriteByte('\n')
}

var labelEscaper = strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)

// escapeLabelValue escapes backslash, double-quote, and newline per the
// exposition format.
func escapeLabelValue(s string) string { return labelEscaper.Replace(s) }

var helpEscaper = strings.NewReplacer(`\`, `\\`, "\n", `\n`)

// escapeHelp escapes backslash and newline in # HELP text.
func escapeHelp(s string) string { return helpEscaper.Replace(s) }
