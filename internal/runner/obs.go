package runner

import (
	"fmt"
	"sync/atomic"

	"partree/internal/core"
	"partree/internal/obs"
	"partree/internal/trace"
)

// runnerObs is the runner's live instrumentation. Counters are plain
// atomics maintained on every run whether or not a registry is attached
// — the cost is a handful of atomic adds per *spec* (never per body or
// per tree node), so there is nothing to disable. RegisterObs exposes
// them on a registry when a binary runs with -http.
//
// The counters obey conservation laws that AuditObs checks against the
// result cache (the runner-level analogue of internal/verify's metrics
// laws): every cache miss becomes exactly one execution, every execution
// ends completed or failed, and hits+misses account for every request.
type runnerObs struct {
	runs        atomic.Int64 // requests that reached the cache lookup
	cacheHits   atomic.Int64 // requests answered by an existing entry
	cacheMisses atomic.Int64 // requests that created an entry (one execution each)
	started     atomic.Int64 // executions that acquired a worker slot
	completed   atomic.Int64 // executions finished with a usable Result
	failed      atomic.Int64 // executions finished with Result.Failed()
	queueDepth  atomic.Int64 // executions waiting for a worker slot
	inFlight    atomic.Int64 // executions currently holding a slot
	memoHits    atomic.Int64 // body-set requests served from the memo
	memoMisses  atomic.Int64 // body-set requests that generated bodies

	resultEvictions  atomic.Int64 // completed results dropped past the LRU bound
	bodyEvictions    atomic.Int64 // body sets dropped past the LRU bound
	transientDropped atomic.Int64 // admission rejections dropped from the cache

	// specSeconds distributes per-spec wall time (Result.WallNs) across
	// deterministic exponential buckets, labeled by backend: 1ms..~137s.
	specSeconds *obs.Vec[*obs.Histogram]
	// traceBridge accumulates traced builds' summaries (phase seconds,
	// lock wait/hold) into live counters — the summary → metrics bridge.
	traceBridge *trace.MetricsBridge
}

func newRunnerObs() *runnerObs {
	return &runnerObs{
		specSeconds: obs.NewHistogramVec(
			"partree_runner_spec_duration_seconds",
			"Wall-clock time per executed spec (cache hits excluded).",
			obs.ExpBuckets(0.001, 2, 18), "backend"),
		traceBridge: trace.NewMetricsBridge(),
	}
}

// observeExecuted records one finished execution.
func (o *runnerObs) observeExecuted(res Result) {
	if res.Failed() {
		o.failed.Add(1)
	} else {
		o.completed.Add(1)
	}
	o.specSeconds.With(string(res.Spec.Backend)).Observe(float64(res.WallNs) / 1e9)
	if s, ok := res.TraceSummary(); ok {
		o.traceBridge.Record(s)
	}
}

// ObsSnapshot is a consistent-enough view of the runner's counters for
// tests and audits (exact when no executions are in flight).
type ObsSnapshot struct {
	Runs, CacheHits, CacheMisses int64
	Started, Completed, Failed   int64
	QueueDepth, InFlight         int64
	BodyMemoHits, BodyMemoMisses int64
	ResultEvictions              int64
	BodyEvictions                int64
	TransientDropped             int64
	SpecDurationsObserved        uint64
}

// ObsSnapshot returns the current counter values.
func (r *Runner) ObsSnapshot() ObsSnapshot {
	o := r.obs
	var durations uint64
	for _, b := range []Backend{Native, Simulated} {
		durations += o.specSeconds.With(string(b)).Count()
	}
	return ObsSnapshot{
		Runs:                  o.runs.Load(),
		CacheHits:             o.cacheHits.Load(),
		CacheMisses:           o.cacheMisses.Load(),
		Started:               o.started.Load(),
		Completed:             o.completed.Load(),
		Failed:                o.failed.Load(),
		QueueDepth:            o.queueDepth.Load(),
		InFlight:              o.inFlight.Load(),
		BodyMemoHits:          o.memoHits.Load(),
		BodyMemoMisses:        o.memoMisses.Load(),
		ResultEvictions:       o.resultEvictions.Load(),
		BodyEvictions:         o.bodyEvictions.Load(),
		TransientDropped:      o.transientDropped.Load(),
		SpecDurationsObserved: durations,
	}
}

// AuditObs cross-checks the live counters against the result cache — the
// runner-level conservation law, companion to internal/verify's six
// metrics laws. It is exact only when the runner is idle (no Run or
// RunAll in progress).
func (r *Runner) AuditObs() error {
	s := r.ObsSnapshot()
	results := r.Results()
	if s.QueueDepth != 0 || s.InFlight != 0 {
		return fmt.Errorf("runner obs: not idle: queue=%d in-flight=%d", s.QueueDepth, s.InFlight)
	}
	if s.CacheHits+s.CacheMisses != s.Runs {
		return fmt.Errorf("runner obs: hits(%d)+misses(%d) != runs(%d)", s.CacheHits, s.CacheMisses, s.Runs)
	}
	// Evicted entries and dropped admission rejections were misses whose
	// results the cache no longer holds; they complete the balance.
	if s.CacheMisses != int64(len(results))+s.ResultEvictions+s.TransientDropped {
		return fmt.Errorf("runner obs: misses(%d) != cache entries(%d)+evicted(%d)+transient(%d)",
			s.CacheMisses, len(results), s.ResultEvictions, s.TransientDropped)
	}
	if s.Started != s.CacheMisses {
		return fmt.Errorf("runner obs: started(%d) != misses(%d)", s.Started, s.CacheMisses)
	}
	if s.Completed+s.Failed != s.Started {
		return fmt.Errorf("runner obs: completed(%d)+failed(%d) != started(%d)", s.Completed, s.Failed, s.Started)
	}
	var failed int64
	for _, res := range results {
		if res.Failed() {
			failed++
		}
	}
	if s.ResultEvictions == 0 && s.TransientDropped == 0 && failed != s.Failed {
		// Only checkable while every executed result is still cached.
		return fmt.Errorf("runner obs: failed counter(%d) != failed results(%d)", s.Failed, failed)
	}
	if s.SpecDurationsObserved != uint64(s.Started) {
		return fmt.Errorf("runner obs: duration observations(%d) != executions(%d)", s.SpecDurationsObserved, s.Started)
	}
	if s.BodyMemoHits+s.BodyMemoMisses < s.Started {
		return fmt.Errorf("runner obs: body memo hits(%d)+misses(%d) < executions(%d)",
			s.BodyMemoHits, s.BodyMemoMisses, s.Started)
	}
	return nil
}

// RegisterObs exposes the runner's counters, gauges, and the per-spec
// duration histogram on reg. Call once per (runner, registry) pair.
func (r *Runner) RegisterObs(reg *obs.Registry) error {
	o := r.obs
	ctr := func(name, help string, v *atomic.Int64) obs.Collector {
		return obs.NewCounterFunc(name, help, func() float64 { return float64(v.Load()) })
	}
	gauge := func(name, help string, v *atomic.Int64) obs.Collector {
		return obs.NewGaugeFunc(name, help, func() float64 { return float64(v.Load()) })
	}
	return reg.Register(
		ctr("partree_runner_runs_total", "Spec requests that reached the result cache.", &o.runs),
		ctr("partree_runner_cache_hits_total", "Spec requests answered by the memoized result cache.", &o.cacheHits),
		ctr("partree_runner_cache_misses_total", "Spec requests that triggered a new execution.", &o.cacheMisses),
		ctr("partree_runner_specs_started_total", "Spec executions that acquired a worker slot.", &o.started),
		ctr("partree_runner_specs_completed_total", "Spec executions that finished successfully.", &o.completed),
		ctr("partree_runner_specs_failed_total", "Spec executions that finished with an error or check failure.", &o.failed),
		gauge("partree_runner_queue_depth", "Spec executions waiting for a worker slot.", &o.queueDepth),
		gauge("partree_runner_in_flight", "Spec executions currently holding a worker slot.", &o.inFlight),
		ctr("partree_runner_body_memo_hits_total", "Body-set requests served from the (model,n,seed) memo.", &o.memoHits),
		ctr("partree_runner_body_memo_misses_total", "Body-set requests that generated a new body set.", &o.memoMisses),
		obs.NewGaugeFunc("partree_runner_workers", "Worker-pool bound of this runner.",
			func() float64 { return float64(r.workers) }),
		evictionsCollector{o},
		o.specSeconds,
		o.traceBridge,
	)
}

// evictionsCollector renders both LRU caches' eviction counters as one
// family labeled by cache, so a dashboard spots churn in either bound.
type evictionsCollector struct{ o *runnerObs }

// Collect implements obs.Collector.
func (c evictionsCollector) Collect(out []obs.Family) []obs.Family {
	return append(out, obs.Family{
		Name: "partree_runner_evictions_total",
		Help: "Cache entries evicted past the configured LRU bounds, by cache.",
		Type: obs.TypeCounter,
		Series: []obs.Series{
			{Labels: []obs.Label{{Name: "cache", Value: "bodies"}}, Value: float64(c.o.bodyEvictions.Load())},
			{Labels: []obs.Label{{Name: "cache", Value: "results"}}, Value: float64(c.o.resultEvictions.Load())},
		},
	})
}

// buildCollector exposes internal/core's process-wide per-algorithm
// build totals as labeled counter families. The totals are fed by every
// builder constructed through core.New, so native builds show up here no
// matter which layer ran them (runner spec, nbody step, verify
// reference).
type buildCollector struct{}

// RegisterBuildObs adds the partree_build_* families to reg. They are
// process-global: register once per registry, not once per runner.
func RegisterBuildObs(reg *obs.Registry) error {
	return reg.Register(buildCollector{})
}

// Collect implements obs.Collector.
func (buildCollector) Collect(out []obs.Family) []obs.Family {
	type col struct {
		name string
		help string
		get  func(core.BuildTotals) int64
	}
	cols := []col{
		{"partree_build_total", "Completed tree builds per algorithm.", func(t core.BuildTotals) int64 { return t.Builds }},
		{"partree_build_locks_total", "Lock acquisitions during tree builds.", func(t core.BuildTotals) int64 { return t.Locks }},
		{"partree_build_cells_total", "Cells allocated during tree builds.", func(t core.BuildTotals) int64 { return t.Cells }},
		{"partree_build_leaves_total", "Leaves allocated during tree builds.", func(t core.BuildTotals) int64 { return t.Leaves }},
		{"partree_build_retries_total", "Lost-race descent restarts during tree builds.", func(t core.BuildTotals) int64 { return t.Retries }},
		{"partree_build_bodies_total", "Bodies loaded into trees.", func(t core.BuildTotals) int64 { return t.Bodies }},
		{"partree_build_bodies_moved_total", "Bodies moved across leaf boundaries by UPDATE.", func(t core.BuildTotals) int64 { return t.Moved }},
	}
	totals := make([]core.BuildTotals, core.NumAlgorithms)
	for _, a := range core.Algorithms() {
		totals[int(a)] = core.BuildTotalsFor(a)
	}
	for _, c := range cols {
		fam := obs.Family{Name: c.name, Help: c.help, Type: obs.TypeCounter}
		for _, a := range core.Algorithms() {
			fam.Series = append(fam.Series, obs.Series{
				Labels: []obs.Label{{Name: "alg", Value: a.String()}},
				Value:  float64(c.get(totals[int(a)])),
			})
		}
		out = append(out, fam)
	}
	return out
}
