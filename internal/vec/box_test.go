package vec

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestBoxOfContainsAll(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	pts := make([]V3, 500)
	for i := range pts {
		pts[i] = V3{r.NormFloat64(), r.NormFloat64() * 10, r.NormFloat64() * 0.1}
	}
	b := BoxOf(len(pts), func(i int) V3 { return pts[i] })
	for i, p := range pts {
		if !b.Contains(p) {
			t.Fatalf("point %d %v outside its bounding box", i, p)
		}
	}
}

func TestBoxDistZeroInside(t *testing.T) {
	b := Box{Lo: V3{-1, -1, -1}, Hi: V3{1, 1, 1}}
	if d := b.Dist(V3{0.5, -0.5, 0}); d != 0 {
		t.Fatalf("inside point distance %g", d)
	}
	if d := b.Dist(V3{1, 1, 1}); d != 0 {
		t.Fatalf("corner point distance %g", d)
	}
}

func TestBoxDistAxisAndCorner(t *testing.T) {
	b := Box{Lo: V3{0, 0, 0}, Hi: V3{2, 2, 2}}
	if d := b.Dist(V3{5, 1, 1}); d != 3 {
		t.Fatalf("face distance %g, want 3", d)
	}
	want := math.Sqrt(3)
	if d := b.Dist(V3{3, 3, 3}); math.Abs(d-want) > 1e-12 {
		t.Fatalf("corner distance %g, want %g", d, want)
	}
}

// Property: Dist is a lower bound on the distance to any point inside the
// box — the exact guarantee the locally-essential-tree criterion relies on.
func TestBoxDistLowerBoundProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		b := Box{
			Lo: V3{r.NormFloat64(), r.NormFloat64(), r.NormFloat64()},
		}
		b.Hi = b.Lo.Add(V3{r.Float64() * 5, r.Float64() * 5, r.Float64() * 5})
		q := V3{r.NormFloat64() * 10, r.NormFloat64() * 10, r.NormFloat64() * 10}
		dmin := b.Dist(q)
		for i := 0; i < 50; i++ {
			inside := V3{
				b.Lo.X + r.Float64()*(b.Hi.X-b.Lo.X),
				b.Lo.Y + r.Float64()*(b.Hi.Y-b.Lo.Y),
				b.Lo.Z + r.Float64()*(b.Hi.Z-b.Lo.Z),
			}
			if inside.Dist(q) < dmin-1e-12 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestBoxSplitCovers(t *testing.T) {
	b := Box{Lo: V3{0, 0, 0}, Hi: V3{4, 2, 2}}
	if b.LongestAxis() != 0 {
		t.Fatalf("longest axis %d, want 0", b.LongestAxis())
	}
	lo, hi := b.Split(0, 1.5)
	if lo.Hi.X != 1.5 || hi.Lo.X != 1.5 {
		t.Fatalf("split wrong: %+v %+v", lo, hi)
	}
	// Every point of b is in lo or hi.
	r := rand.New(rand.NewSource(3))
	for i := 0; i < 200; i++ {
		p := V3{r.Float64() * 4, r.Float64() * 2, r.Float64() * 2}
		if !lo.Contains(p) && !hi.Contains(p) {
			t.Fatalf("point %v lost by split", p)
		}
	}
}

func TestMortonOrderingMatchesOctants(t *testing.T) {
	// Points in lower octants of the root must sort before points in
	// higher octants: Morton order is the octree's child order.
	c := Cube{Center: V3{0, 0, 0}, Size: 2}
	var prev uint64
	for o := Octant(0); o < NOctants; o++ {
		child := c.Child(o)
		key := c.Morton(child.Center)
		if o > 0 && key <= prev {
			t.Fatalf("octant %d key %d not above octant %d key %d", o, key, o-1, prev)
		}
		prev = key
	}
}

func TestMortonClampsOutOfRange(t *testing.T) {
	c := Cube{Center: V3{0, 0, 0}, Size: 2}
	// Outside points clamp rather than wrap.
	lo := c.Morton(V3{-100, -100, -100})
	hi := c.Morton(V3{100, 100, 100})
	if lo != 0 {
		t.Fatalf("far-low key %d, want 0", lo)
	}
	if hi != c.Morton(V3{1, 1, 1}) {
		t.Fatalf("far-high key %d does not clamp like the max corner", hi)
	}
}
